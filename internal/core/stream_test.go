package core

import (
	"testing"

	"microlink/internal/tweets"
)

func streamFixture() (*Linker, []*tweets.Tweet) {
	f := newFixture(50, 5)
	l := f.linker(Config{})
	var ts []*tweets.Tweet
	surfaces := []string{"jordan", "nba", "icml", "zzzz"}
	for i := 0; i < 40; i++ {
		ts = append(ts, &tweets.Tweet{
			ID:   int64(i),
			User: int32(i % 4),
			Time: 100,
			Mentions: []tweets.Mention{
				{Surface: surfaces[i%len(surfaces)]},
				{Surface: surfaces[(i+1)%len(surfaces)]},
			},
		})
	}
	return l, ts
}

func TestLinkStreamMatchesSequential(t *testing.T) {
	l, ts := streamFixture()
	want := make([][]int32, len(ts))
	for i, tw := range ts {
		want[i] = l.LinkTweet(tw)
	}
	for _, workers := range []int{1, 2, 8, 100} {
		got := l.LinkStream(ts, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: len %d", workers, len(got))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d tweet %d mention %d: %d != %d",
						workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestLinkStreamEmpty(t *testing.T) {
	l, _ := streamFixture()
	if got := l.LinkStream(nil, 4); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestLinkStreamDefaultWorkers(t *testing.T) {
	l, ts := streamFixture()
	got := l.LinkStream(ts[:3], 0)
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
}
