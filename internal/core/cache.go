package core

import (
	"sync"
	"sync/atomic"

	"microlink/internal/kb"
)

// interestCache memoises raw S_in(u, e) values (Eq. 8 before the
// candidate-set normalisation of ScoreCandidates) so repeat mentions of hot
// entities skip the reachability averaging entirely. It is sharded to keep
// lock contention off the concurrent batch pipeline and generation-stamped
// so invalidation is O(1): instead of walking the shards, Feedback bumps the
// per-entity generation and Follow/InvalidateReachability bumps the global
// one, and stale entries simply stop matching on lookup.
//
// Correctness contract (see DESIGN.md "Interest cache"):
//
//   - An entry is keyed by (user, entity) and additionally stamped with a
//     hash of the candidate set it was computed against, because Eq. 8's
//     influential-user truncation depends on the competing candidates E_m.
//     A lookup with a different candidate set misses.
//   - Entries are read and written while holding the linker's scoring read
//     lock; invalidation bumps happen under the write lock (Feedback) or
//     via InvalidateReachability. A scorer therefore never stores a value
//     computed from pre-invalidation state after the bump: the generation
//     read, the computation, and the store all sit inside one read-locked
//     critical section.
//   - Invalidation follows the influence cache's per-entity scope: new
//     postings on e invalidate (·, e) entries. A reachability change (new
//     follow edge) can move any user's interest in any entity, so it bumps
//     the global generation and empties the cache logically.
type interestCache struct {
	global atomic.Uint64   // bumped when reachability changes
	entGen []atomic.Uint64 // per-entity generation, bumped by Feedback

	shards      [interestCacheShards]interestShard
	maxPerShard int
}

const interestCacheShards = 16

// defaultCacheEntriesPerShard bounds cache memory to ~64k entries total by
// default (each entry is a few words: well under 4 MB).
const defaultCacheEntriesPerShard = 4096

type interestKey struct {
	u kb.UserID
	e kb.EntityID
}

type interestEntry struct {
	global uint64  // cache.global at compute time
	entity uint64  // cache.entGen[e] at compute time
	set    uint64  // candidate-set hash the value was computed against
	val    float64 // raw S_in(u, e), pre-floor and pre-normalisation
}

type interestShard struct {
	mu sync.RWMutex                  // microlint:lock-order interest-shard
	m  map[interestKey]interestEntry // microlint:guarded-by mu
}

func newInterestCache(numEntities, maxPerShard int) *interestCache {
	if maxPerShard <= 0 {
		maxPerShard = defaultCacheEntriesPerShard
	}
	c := &interestCache{
		entGen:      make([]atomic.Uint64, numEntities),
		maxPerShard: maxPerShard,
	}
	for i := range c.shards {
		//nolint:microlint/lockcheck -- cache not yet published; no other goroutine can hold a reference
		c.shards[i].m = make(map[interestKey]interestEntry)
	}
	return c
}

// shard picks the shard for a key by mixing both halves; Fibonacci hashing
// spreads the dense small IDs of the synthetic worlds evenly.
//
// microlint:noalloc
func (c *interestCache) shard(k interestKey) *interestShard {
	h := (uint64(uint32(k.u))*0x9e3779b97f4a7c15 ^ uint64(uint32(k.e))*0xff51afd7ed558ccd) >> 32
	return &c.shards[h%interestCacheShards]
}

// get returns the cached raw interest value, or ok=false when the entry is
// absent, stamped for a different candidate set, or invalidated. The hit
// path is allocation-free: value key, sharded map read, atomic stamps.
//
// microlint:noalloc
func (c *interestCache) get(u kb.UserID, e kb.EntityID, setHash uint64) (float64, bool) {
	if c == nil || int(e) >= len(c.entGen) {
		return 0, false
	}
	k := interestKey{u: u, e: e}
	sh := c.shard(k)
	sh.mu.RLock()
	ent, ok := sh.m[k]
	sh.mu.RUnlock()
	if !ok || ent.set != setHash ||
		ent.global != c.global.Load() || ent.entity != c.entGen[e].Load() {
		return 0, false
	}
	return ent.val, true
}

// put stores a freshly computed raw interest value stamped with the current
// generations. A full shard is emptied wholesale before insertion — crude,
// but O(1) amortised, allocation-free on the hit path, and the cache is a
// pure accelerator: losing entries only costs recomputation.
func (c *interestCache) put(u kb.UserID, e kb.EntityID, setHash uint64, val float64) {
	if c == nil || int(e) >= len(c.entGen) {
		return
	}
	k := interestKey{u: u, e: e}
	sh := c.shard(k)
	entry := interestEntry{
		global: c.global.Load(),
		entity: c.entGen[e].Load(),
		set:    setHash,
		val:    val,
	}
	sh.mu.Lock()
	if len(sh.m) >= c.maxPerShard {
		clear(sh.m)
	}
	sh.m[k] = entry
	sh.mu.Unlock()
}

// invalidateEntity drops every (·, e) entry by bumping e's generation.
// Callers must hold the linker's write lock (the Feedback path does).
func (c *interestCache) invalidateEntity(e kb.EntityID) {
	if c == nil || int(e) >= len(c.entGen) {
		return
	}
	c.entGen[e].Add(1)
}

// invalidateAll logically empties the cache by bumping the global
// generation, for events that can move any entry (reachability changes).
func (c *interestCache) invalidateAll() {
	if c == nil {
		return
	}
	c.global.Add(1)
}

// hashEntitySet is FNV-1a over the candidate set. Candidate sets come out
// of the candidate index in deterministic order, so no sorting is needed
// for equal sets to hash equally.
func hashEntitySet(ents []kb.EntityID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, e := range ents {
		v := uint32(e)
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	return h
}
