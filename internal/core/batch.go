package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"microlink/internal/kb"
	"microlink/internal/obs"
)

// BatchOptions tunes the concurrent batch pipeline and the interest cache.
// The zero value selects the defaults noted on each field.
type BatchOptions struct {
	// Workers bounds the LinkBatch worker pool; ≤ 0 selects GOMAXPROCS.
	Workers int
	// ParallelInterestThreshold fans the per-candidate S_in computations
	// of a single mention across a worker pool when
	// len(candidates)×TopInfluential exceeds it — the point where the
	// reachability reads outweigh goroutine handoff. 0 selects the default
	// (64); negative disables intra-mention parallelism.
	ParallelInterestThreshold int
	// DisableInterestCache turns off the (user, entity) interest cache,
	// recomputing Eq. 8 on every score — the pre-cache behaviour, kept for
	// benchmarks and bisection.
	DisableInterestCache bool
	// CacheEntriesPerShard bounds the interest cache's memory (16 shards);
	// ≤ 0 selects the default 4096 entries per shard.
	CacheEntriesPerShard int
}

func (b *BatchOptions) fill() {
	if b.ParallelInterestThreshold == 0 {
		b.ParallelInterestThreshold = 64
	}
}

// MentionQuery is one (user, time, surface) triple to score.
type MentionQuery struct {
	User    kb.UserID
	Now     int64
	Surface string
}

// BatchResult is the outcome of one MentionQuery. Exactly one of the
// following holds: Err is non-nil (the item was cancelled, timed out, or
// panicked — Entity is kb.NoEntity and Scored nil); or Err is nil and
// Scored carries the full ranking with Entity its best candidate (both
// empty/kb.NoEntity for an unlinkable surface, mirroring LinkMention's
// ok=false).
type BatchResult struct {
	Entity kb.EntityID
	Scored []Scored
	Err    error
}

// LinkBatch scores many mention queries concurrently and returns one
// BatchResult per query, in input order.
//
// The pipeline exploits the Eq. 1 split between user-independent and
// user-dependent work: queries are grouped by (surface, now), each group
// pays candidate generation, popularity, and recency once, and only the
// interest stage runs per query (answered from the interest cache when a
// live entry exists). Groups fan out across a worker pool bounded by
// BatchOptions.Workers (default GOMAXPROCS).
//
// Failure isolation is per item: a cancelled or expired context marks the
// not-yet-scored items with ctx.Err() and returns promptly without
// discarding completed ones, and a panic while scoring one item is
// captured into that item's Err. LinkBatch only reads linker state, so it
// is safe to run concurrently with Feedback and with dynamic reachability
// maintenance; each group observes a consistent snapshot (it scores
// entirely inside one read-locked critical section).
func (l *Linker) LinkBatch(ctx context.Context, queries []MentionQuery) []BatchResult {
	res := make([]BatchResult, len(queries))
	l.metrics().batchSize.Observe(float64(len(queries)))
	if len(queries) == 0 {
		return res
	}

	type groupKey struct {
		now     int64
		surface string
	}
	groups := make(map[groupKey][]int)
	order := make([]groupKey, 0, len(queries))
	for i, q := range queries {
		k := groupKey{now: q.Now, surface: q.Surface}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}

	workers := l.cfg.Batch.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = len(order)
	}

	// cancelFrom marks every query of order[gi:] with ctx.Err(): the
	// drain path for work that will never be handed to a scorer.
	cancelFrom := func(gi int) {
		for _, k := range order[gi:] {
			for _, i := range groups[k] {
				res[i] = BatchResult{Entity: kb.NoEntity, Err: ctx.Err()}
			}
		}
	}

	if workers <= 1 {
		for gi, k := range order {
			if ctx.Err() != nil {
				cancelFrom(gi)
				break
			}
			l.scoreGroup(ctx, k.now, k.surface, groups[k], queries, res)
		}
		return res
	}

	ch := make(chan groupKey)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range ch {
				l.metrics().batchWorkers.Inc()
				l.scoreGroup(ctx, k.now, k.surface, groups[k], queries, res)
				l.metrics().batchWorkers.Dec()
			}
		}()
	}
	// Feed groups until done or cancelled. Without the ctx arm a
	// cancelled batch would still march every remaining group through
	// the pool (each item individually erroring inside scoreGroup);
	// with it the pool drains as soon as the in-flight groups finish,
	// and the unsent remainder is marked cancelled here.
feed:
	for gi, k := range order {
		select {
		case ch <- k:
		case <-ctx.Done():
			cancelFrom(gi)
			break feed
		}
	}
	close(ch)
	wg.Wait()
	return res
}

// scoreGroup scores every query index in idxs, all sharing (surface, now),
// writing into res. The whole group runs inside one read-locked critical
// section so its items see one consistent snapshot of the knowledgebase.
func (l *Linker) scoreGroup(ctx context.Context, now int64, surface string, idxs []int, queries []MentionQuery, res []BatchResult) {
	l.mu.RLock()
	defer l.mu.RUnlock()

	var sh *sharedScores
	if err := capture(func() { sh = l.sharedLocked(now, surface) }); err != nil {
		for _, i := range idxs {
			res[i] = BatchResult{Entity: kb.NoEntity, Err: err}
		}
		return
	}
	for _, i := range idxs {
		l.metrics().mentions.Inc()
		switch {
		case ctx.Err() != nil:
			res[i] = BatchResult{Entity: kb.NoEntity, Err: ctx.Err()}
		case sh == nil:
			l.metrics().misses.Inc()
			res[i] = BatchResult{Entity: kb.NoEntity}
		default:
			i := i
			if err := capture(func() { res[i] = l.scoreItem(ctx, queries[i].User, sh) }); err != nil {
				res[i] = BatchResult{Entity: kb.NoEntity, Err: err}
			}
		}
	}
}

func (l *Linker) scoreItem(ctx context.Context, u kb.UserID, sh *sharedScores) BatchResult {
	span := obs.StartSpan(l.metrics().link)
	scored, err := l.finishLocked(ctx, u, sh)
	span.Stop()
	if err != nil {
		return BatchResult{Entity: kb.NoEntity, Err: err}
	}
	best := kb.NoEntity
	if len(scored) > 0 {
		best = scored[0].Entity
	}
	return BatchResult{Entity: best, Scored: scored}
}

// capture runs fn, converting a panic into an error so one poisoned query
// cannot take down the whole batch (or the server goroutine above it).
func capture(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("microlink: batch item panicked: %v", r)
		}
	}()
	fn()
	return nil
}
