package core

import (
	"math"
	"testing"

	"microlink/internal/candidate"
	"microlink/internal/graph"
	"microlink/internal/influence"
	"microlink/internal/kb"
	"microlink/internal/reach"
	"microlink/internal/recency"
	"microlink/internal/tweets"
)

// Fixture: the paper's running example.
//
// Entities: 0 = MJ (basketball), 1 = MJ (ML), 2 = NBA, 3 = ICML.
// Surfaces: "jordan" → {0,1}; "nba" → 2; "icml" → 3.
// Links: articles 4..9 co-link {0,2}; articles 10..11 co-link {1,3}.
//
// Users: 0 = target (follows the ML expert), 1 = @NBAOfficial (tweets
// about MJ bb), 2 = ML expert (tweets about MJ ml), 3 = casual fan.
type fixture struct {
	k    *kb.KB
	ckb  *kb.Complemented
	rx   reach.Index
	inf  *influence.Estimator
	rec  *recency.Scorer
	cand *candidate.Index
}

func newFixture(popBB, popML int) *fixture {
	b := kb.NewBuilder()
	b.AddEntity(kb.Entity{Name: "Michael Jordan (basketball)"})
	b.AddEntity(kb.Entity{Name: "Michael Jordan (ML)"})
	b.AddEntity(kb.Entity{Name: "NBA"})
	b.AddEntity(kb.Entity{Name: "ICML"})
	for i := 0; i < 8; i++ {
		b.AddEntity(kb.Entity{Name: "article"})
	}
	b.AddSurface("jordan", 0)
	b.AddSurface("jordan", 1)
	b.AddSurface("nba", 2)
	b.AddSurface("icml", 3)
	for a := kb.EntityID(4); a <= 9; a++ {
		b.AddLink(a, 0)
		b.AddLink(a, 2)
	}
	for a := kb.EntityID(10); a <= 11; a++ {
		b.AddLink(a, 1)
		b.AddLink(a, 3)
	}
	k := b.Build()

	ckb := kb.Complement(k)
	id := int64(0)
	link := func(e kb.EntityID, u kb.UserID, n int, at int64) {
		for i := 0; i < n; i++ {
			id++
			ckb.Link(e, kb.Posting{Tweet: id, User: u, Time: at})
		}
	}
	link(0, 1, popBB, 100) // @NBAOfficial tweets MJ bb
	link(1, 2, popML, 100) // ML expert tweets MJ ml

	gb := graph.NewBuilder(5)
	gb.AddEdge(0, 2) // target follows the ML expert
	gb.AddEdge(3, 1) // casual fan follows @NBAOfficial
	g := gb.Build()

	f := &fixture{
		k:    k,
		ckb:  ckb,
		rx:   reach.NewNaive(g, 4),
		cand: candidate.NewIndex(k, candidate.Options{MaxEdit: 1}),
	}
	f.inf = influence.New(ckb, influence.Entropy)
	f.rec = recency.NewScorer(ckb, recency.BuildPropNet(k, 0.3), recency.Options{Tau: 100, Theta1: 3})
	return f
}

func (f *fixture) linker(cfg Config) *Linker {
	return New(f.ckb, f.cand, f.rx, f.inf, f.rec, cfg)
}

func TestInterestOnlyFollowsSocialSignal(t *testing.T) {
	f := newFixture(50, 5) // basketball MJ far more popular
	l := f.linker(Config{WInterest: 1})
	// Target user follows the ML expert: interest must override nothing
	// else (α=1) and pick MJ (ML) despite low popularity.
	e, ok := l.LinkMention(0, 100, "jordan")
	if !ok || e != 1 {
		t.Fatalf("got %d ok=%v, want MJ (ML)", e, ok)
	}
	// The casual fan following @NBAOfficial gets MJ (basketball).
	if e, _ := l.LinkMention(3, 100, "jordan"); e != 0 {
		t.Fatalf("fan got %d, want MJ (bb)", e)
	}
}

func TestPopularityOnly(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{WPopularity: 1})
	for u := kb.UserID(0); u < 4; u++ {
		if e, _ := l.LinkMention(u, 100, "jordan"); e != 0 {
			t.Fatalf("user %d got %d, want the popular MJ (bb)", u, e)
		}
	}
}

func TestRecencyOnlyWithPropagation(t *testing.T) {
	f := newFixture(50, 5)
	// Burst on ICML now: propagation lifts MJ (ML) above MJ (bb), whose
	// postings are stale.
	for i := 0; i < 20; i++ {
		f.ckb.Link(3, kb.Posting{Tweet: int64(1000 + i), User: 2, Time: 10000})
	}
	l := f.linker(Config{WRecency: 1})
	e, _ := l.LinkMention(0, 10000, "jordan")
	if e != 1 {
		t.Fatalf("got %d, want MJ (ML) via ICML burst propagation", e)
	}
}

func TestDefaultCombinationAndBreakdown(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{})
	scored := l.ScoreCandidates(0, 100, "jordan")
	if len(scored) != 2 {
		t.Fatalf("scored = %+v", scored)
	}
	for _, s := range scored {
		recomposed := 0.6*s.Interest + 0.3*s.Recency + 0.1*s.Popularity
		if math.Abs(recomposed-s.Score) > 1e-12 {
			t.Fatalf("breakdown does not recompose: %+v", s)
		}
		if s.Interest < 0 || s.Interest > 1 || s.Popularity < 0 || s.Popularity > 1 || s.Recency < 0 || s.Recency > 1 {
			t.Fatalf("feature out of range: %+v", s)
		}
	}
	// Interest dominates at the default weights: the follower of the ML
	// expert still gets MJ (ML).
	if scored[0].Entity != 1 {
		t.Fatalf("top = %+v", scored[0])
	}
}

func TestUnknownSurface(t *testing.T) {
	f := newFixture(5, 5)
	l := f.linker(Config{})
	if _, ok := l.LinkMention(0, 100, "qqqqqqq"); ok {
		t.Fatal("unknown surface must not link")
	}
	if s := l.ScoreCandidates(0, 100, "qqqqqqq"); s != nil {
		t.Fatalf("scored = %+v", s)
	}
}

func TestFuzzySurfaceStillLinks(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{WPopularity: 1})
	if e, ok := l.LinkMention(0, 100, "jordon"); !ok || e != 0 {
		t.Fatalf("fuzzy mention: got %d ok=%v", e, ok)
	}
}

func TestTopKNewEntityThreshold(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{})
	if thr := l.NewEntityThreshold(); thr != 0.4 {
		t.Fatalf("threshold = %f", thr)
	}
	// User 4 follows nobody: S_in = 0 for every candidate, so every score
	// is ≤ β+γ = 0.4 and TopK must be empty (Appendix D: likely a new
	// entity/meaning).
	if got := l.TopK(4, 100, "jordan", 3); len(got) != 0 {
		t.Fatalf("TopK for uninterested user = %+v", got)
	}
	// The interested user clears the threshold.
	got := l.TopK(0, 100, "jordan", 3)
	if len(got) == 0 || got[0].Entity != 1 {
		t.Fatalf("TopK = %+v", got)
	}
}

func TestLinkTweetIndependentMentions(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{})
	tw := &tweets.Tweet{
		ID: 1, User: 0, Time: 100,
		Mentions: []tweets.Mention{
			{Surface: "jordan"}, {Surface: "icml"}, {Surface: "zzzz"},
		},
	}
	got := l.LinkTweet(tw)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != kb.NoEntity {
		t.Fatalf("got %v", got)
	}
}

func TestFeedbackUpdatesKnowledge(t *testing.T) {
	f := newFixture(5, 5)
	l := f.linker(Config{})
	before := f.ckb.Count(2)
	tw := &tweets.Tweet{ID: 99, User: 3, Time: 500, Mentions: []tweets.Mention{{Surface: "nba"}}}
	l.Feedback(tw, []kb.EntityID{2})
	if f.ckb.Count(2) != before+1 {
		t.Fatalf("count = %d", f.ckb.Count(2))
	}
	if f.ckb.UserCount(2, 3) != 1 {
		t.Fatal("authorship not recorded")
	}
	// NoEntity entries are skipped.
	l.Feedback(tw, []kb.EntityID{kb.NoEntity})
	if f.ckb.Count(2) != before+1 {
		t.Fatal("NoEntity feedback must be a no-op")
	}
}

func TestWholeCommunityMatchesTruncatedOnTinyCommunities(t *testing.T) {
	f := newFixture(5, 5)
	trunc := f.linker(Config{WInterest: 1, TopInfluential: 10})
	whole := f.linker(Config{WInterest: 1, WholeCommunity: true})
	// Communities here have a single member, so both paths agree.
	a, _ := trunc.LinkMention(0, 100, "jordan")
	b, _ := whole.LinkMention(0, 100, "jordan")
	if a != b {
		t.Fatalf("trunc=%d whole=%d", a, b)
	}
}

func TestConfigDefaults(t *testing.T) {
	f := newFixture(5, 5)
	l := f.linker(Config{})
	cfg := l.Config()
	if cfg.WInterest != 0.6 || cfg.WRecency != 0.3 || cfg.WPopularity != 0.1 || cfg.TopInfluential != 5 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if l.Name() != "social-temporal" {
		t.Fatal("name")
	}
}
