package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"microlink/internal/kb"
	"microlink/internal/tweets"
)

func batchQueries(n int) []MentionQuery {
	surfaces := []string{"jordan", "nba", "icml", "zzzz"}
	qs := make([]MentionQuery, n)
	for i := range qs {
		qs[i] = MentionQuery{
			User:    kb.UserID(i % 4),
			Now:     100,
			Surface: surfaces[i%len(surfaces)],
		}
	}
	return qs
}

// LinkBatch must agree with the serial ScoreCandidates path query by
// query, across pool sizes and with the cache on and off.
func TestLinkBatchMatchesSerial(t *testing.T) {
	f := newFixture(50, 5)
	qs := batchQueries(40)
	for _, opt := range []BatchOptions{
		{},
		{Workers: 1},
		{Workers: 8},
		{DisableInterestCache: true},
	} {
		l := f.linker(Config{Batch: opt})
		want := make([][]Scored, len(qs))
		for i, q := range qs {
			want[i] = l.ScoreCandidates(q.User, q.Now, q.Surface)
		}
		got := l.LinkBatch(context.Background(), qs)
		if len(got) != len(qs) {
			t.Fatalf("opt=%+v: %d results for %d queries", opt, len(got), len(qs))
		}
		for i, r := range got {
			if r.Err != nil {
				t.Fatalf("opt=%+v query %d: err = %v", opt, i, r.Err)
			}
			if len(r.Scored) != len(want[i]) {
				t.Fatalf("opt=%+v query %d: %d scored, want %d", opt, i, len(r.Scored), len(want[i]))
			}
			for j := range want[i] {
				if r.Scored[j].Entity != want[i][j].Entity ||
					math.Abs(r.Scored[j].Score-want[i][j].Score) > 1e-12 {
					t.Fatalf("opt=%+v query %d cand %d: %+v != %+v", opt, i, j, r.Scored[j], want[i][j])
				}
			}
			wantBest := kb.NoEntity
			if len(want[i]) > 0 {
				wantBest = want[i][0].Entity
			}
			if r.Entity != wantBest {
				t.Fatalf("opt=%+v query %d: best %d, want %d", opt, i, r.Entity, wantBest)
			}
		}
	}
}

func TestLinkBatchEmpty(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{})
	if got := l.LinkBatch(context.Background(), nil); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

// An already-expired context must mark every item with the context error
// and return promptly rather than scoring anything.
func TestLinkBatchExpiredContext(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	start := time.Now()
	got := l.LinkBatch(ctx, batchQueries(200))
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("expired batch took %v", el)
	}
	for i, r := range got {
		if !errors.Is(r.Err, context.DeadlineExceeded) {
			t.Fatalf("query %d: err = %v, want deadline exceeded", i, r.Err)
		}
		if r.Entity != kb.NoEntity || r.Scored != nil {
			t.Fatalf("query %d carries results despite deadline: %+v", i, r)
		}
	}
}

// Cancelling a batch mid-flight must (a) return promptly, (b) mark every
// unscored item with the context error while keeping completed ones, and
// (c) leave no pool goroutine behind — the count returns to the
// pre-batch baseline. Run under -race in the CI race lane, this is the
// regression test for the feeder's ctx.Done drain path.
func TestLinkBatchCancellationDrainsPool(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{Batch: BatchOptions{Workers: 8}})

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Distinct Now values make every query its own group, so the feeder
	// is still feeding when the cancel lands.
	qs := make([]MentionQuery, 600)
	for i := range qs {
		qs[i] = MentionQuery{User: kb.UserID(i % 4), Now: int64(i), Surface: "jordan"}
	}
	done := make(chan []BatchResult, 1)
	go func() { done <- l.LinkBatch(ctx, qs) }()
	cancel()

	var res []BatchResult
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("LinkBatch did not return after cancellation")
	}
	if len(res) != len(qs) {
		t.Fatalf("%d results for %d queries", len(res), len(qs))
	}
	for i, r := range res {
		if r.Err == nil {
			continue // completed before the cancel landed
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Entity != kb.NoEntity || r.Scored != nil {
			t.Fatalf("query %d carries results despite cancellation: %+v", i, r)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Fatalf("goroutine count %d did not return to baseline %d after cancellation", n, baseline)
	}
}

func TestScoreCandidatesCtxCancelled(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := l.ScoreCandidatesCtx(ctx, 0, 100, "jordan"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if _, _, err := l.LinkMentionCtx(ctx, 0, 100, "jordan"); !errors.Is(err, context.Canceled) {
		t.Fatalf("LinkMentionCtx err = %v", err)
	}
	if _, err := l.TopKCtx(ctx, 0, 100, "jordan", 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKCtx err = %v", err)
	}
}

// The interest cache must serve repeat scores without recomputation and
// drop entries for an entity as soon as Feedback appends postings to it.
func TestInterestCacheInvalidation(t *testing.T) {
	f := newFixture(50, 5)
	cached := f.linker(Config{WInterest: 1})
	fresh := f.linker(Config{WInterest: 1, Batch: BatchOptions{DisableInterestCache: true}})

	first := cached.ScoreCandidates(0, 100, "jordan")
	again := cached.ScoreCandidates(0, 100, "jordan")
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("cached rescore diverged: %+v != %+v", first[i], again[i])
		}
	}

	// Feedback: the target user (0) posts about basketball MJ many times,
	// making herself part of that community and shifting Eq. 8.
	for i := 0; i < 10; i++ {
		tw := &tweets.Tweet{ID: int64(1000 + i), User: 0, Time: 100,
			Mentions: []tweets.Mention{{Surface: "jordan"}}}
		links := []kb.EntityID{0}
		cached.Feedback(tw, links)
		fresh.Feedback(tw, links)
	}

	got := cached.ScoreCandidates(0, 100, "jordan")
	want := fresh.ScoreCandidates(0, 100, "jordan")
	for i := range want {
		if got[i].Entity != want[i].Entity || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("post-feedback cand %d: cached %+v, fresh %+v (stale cache?)", i, got[i], want[i])
		}
	}
	if got[0].Interest == first[0].Interest && got[0].Entity == first[0].Entity && got[0].Score == first[0].Score {
		t.Fatal("feedback did not change the score at all; invalidation untested")
	}
}

// InvalidateReachability must flush every entry, not just one entity's.
func TestInvalidateReachabilityFlushesAll(t *testing.T) {
	f := newFixture(50, 5)
	l := f.linker(Config{})
	l.ScoreCandidates(0, 100, "jordan")
	l.ScoreCandidates(3, 100, "jordan")
	if l.cache == nil {
		t.Fatal("cache unexpectedly disabled")
	}
	if _, ok := l.cache.get(0, 0, hashEntitySet([]kb.EntityID{0, 1})); !ok {
		t.Fatal("expected a live cache entry for (0, 0)")
	}
	l.InvalidateReachability()
	if _, ok := l.cache.get(0, 0, hashEntitySet([]kb.EntityID{0, 1})); ok {
		t.Fatal("entry survived InvalidateReachability")
	}
}

// The parallel interest fan-out must produce the same scores as the
// serial loop. GOMAXPROCS is raised so fanOutInterest actually fires on
// single-core CI machines; threshold 1 forces the pool for the tiny
// fixture's 2-candidate sets.
func TestParallelInterestMatchesSerial(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	f := newFixture(50, 5)
	par := f.linker(Config{Batch: BatchOptions{ParallelInterestThreshold: 1, DisableInterestCache: true}})
	ser := f.linker(Config{Batch: BatchOptions{ParallelInterestThreshold: -1, DisableInterestCache: true}})
	if !par.fanOutInterest(2) {
		t.Fatal("fan-out not engaged despite threshold 1")
	}
	for u := kb.UserID(0); u < 4; u++ {
		got := par.ScoreCandidates(u, 100, "jordan")
		want := ser.ScoreCandidates(u, 100, "jordan")
		if len(got) != len(want) {
			t.Fatalf("user %d: %d vs %d candidates", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d cand %d: parallel %+v != serial %+v", u, i, got[i], want[i])
			}
		}
	}
}

func TestCacheEvictionBound(t *testing.T) {
	c := newInterestCache(1000, 2)
	for i := 0; i < 100; i++ {
		c.put(kb.UserID(i), kb.EntityID(i%1000), 1, float64(i))
	}
	total := 0
	for s := range c.shards {
		total += len(c.shards[s].m)
	}
	if total > interestCacheShards*2 {
		t.Fatalf("cache holds %d entries, bound is %d", total, interestCacheShards*2)
	}
}
