package core

import (
	"runtime"
	"sync"

	"microlink/internal/kb"
	"microlink/internal/tweets"
)

// LinkStream links a batch of tweets concurrently, preserving input order
// in the result. Because the framework links each mention independently —
// no intra- or inter-tweet joint inference — parallelisation is
// embarrassingly simple, which §5.2.2 calls out as the property that lets
// the system keep up with stream-rate ingestion. workers ≤ 0 selects
// GOMAXPROCS.
//
// LinkStream only reads shared state; it must not run concurrently with
// Feedback on the same tweets' entities if strict read-your-write ordering
// matters (the complemented KB itself is safe for concurrent use).
func (l *Linker) LinkStream(ts []*tweets.Tweet, workers int) [][]kb.EntityID {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ts) {
		workers = len(ts)
	}
	out := make([][]kb.EntityID, len(ts))
	if len(ts) == 0 {
		return out
	}
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= len(ts) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				out[i] = l.LinkTweet(ts[i])
			}
		}()
	}
	wg.Wait()
	return out
}
