// Package core implements the paper's entity linker (§3.2): on-the-fly,
// per-mention scoring of candidate entities by the social-temporal
// context of Eq. 1,
//
//	S(e) = α·S_in(u,e) + β·S_r(e) + γ·S_p(e)
//
// combining user interest via weighted reachability to influential
// community members (Eq. 8), entity recency with propagation (Eq. 9/11),
// and entity popularity (Eq. 2). Mentions are linked independently — no
// intra- or inter-tweet joint inference — which is what makes the
// framework fast enough for stream-rate linking.
//
// Scoring decomposes into a user-independent part (candidate generation,
// popularity, recency — functions of the mention surface and time only)
// and a user-dependent part (interest). The batch pipeline in batch.go
// exploits the split: queries sharing (surface, now) pay the shared stages
// once, and the per-(user, entity) interest values are memoised in a
// sharded generation-stamped cache (cache.go).
//
// Naming note: the paper's α/β/γ are internally inconsistent (Eq. 1 binds
// β to popularity and γ to recency, while Table 3, Table 4 and Fig. 6(d)
// clearly treat β as recency and γ as popularity, e.g. "β=1" scoring
// between interest and popularity). Config uses explicit field names;
// Table 3's defaults are α=0.6, recency 0.3, popularity 0.1.
package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"microlink/internal/candidate"
	"microlink/internal/influence"
	"microlink/internal/kb"
	"microlink/internal/obs"
	"microlink/internal/reach"
	"microlink/internal/recency"
	"microlink/internal/tweets"
)

// Config weighs the three features of Eq. 1 and sizes the influential-user
// truncation of Eq. 8. Zero values select the paper's defaults (Table 3).
type Config struct {
	WInterest   float64 // α: user interest weight (default 0.6)
	WRecency    float64 // β: entity recency weight (default 0.3)
	WPopularity float64 // γ: entity popularity weight (default 0.1)
	// TopInfluential is the number of most influential users whose
	// weighted reachability is averaged in Eq. 8 (§4.1.2). ≤ 0 selects the
	// default 5; set to -1 … no: use WholeCommunity to disable truncation.
	TopInfluential int
	// WholeCommunity disables influential-user truncation and averages
	// reachability over the entire community U_e (Eq. 3) — the expensive
	// variant of Fig. 5(c).
	WholeCommunity bool
	// MinInterest floors the raw per-candidate interest before
	// normalisation: averages below it (incidental long multi-hop paths —
	// the small-world noise §4.1.1 warns about: "reachable does not mean
	// interested") are treated as no interest at all, so that a user with
	// no real interest in any candidate lets recency and popularity
	// decide. ≤ 0 selects the default 0.05; pass a tiny positive value
	// (e.g. 1e-12) to effectively disable the floor.
	MinInterest float64
	// Batch tunes the concurrent batch pipeline and interest cache (see
	// batch.go); the zero value selects sensible defaults.
	Batch BatchOptions
}

func (c *Config) fill() {
	if c.WInterest == 0 && c.WRecency == 0 && c.WPopularity == 0 {
		c.WInterest, c.WRecency, c.WPopularity = 0.6, 0.3, 0.1
	}
	if c.TopInfluential <= 0 {
		c.TopInfluential = 5
	}
	if c.MinInterest <= 0 {
		c.MinInterest = 0.05
	}
	c.Batch.fill()
}

// Scored is one ranked candidate with its feature breakdown.
type Scored struct {
	Entity     kb.EntityID
	Score      float64
	Interest   float64 // S_in(u, e)
	Recency    float64 // S_r(e)
	Popularity float64 // S_p(e)
}

// Linker is the paper's prototype system. Scoring paths are safe for
// concurrent use; Feedback takes the write side of mu so the multi-step
// KB append + cache invalidation of §3.2.2 is atomic with respect to
// concurrent scoring.
type Linker struct {
	ckb   *kb.Complemented
	cand  *candidate.Index
	reach reach.Index
	inf   *influence.Estimator
	rec   *recency.Scorer
	cfg   Config

	// cache memoises raw S_in(u, e) values; nil when disabled. Reads and
	// writes happen under mu's read side, invalidation under the write
	// side (Feedback) or InvalidateReachability.
	cache *interestCache

	// mu serialises the interactive feedback path (write) against scoring
	// (read). The substrates lock individually, but Feedback spans three of
	// them (complemented KB, influence cache, interest cache); without this
	// lock a scorer can observe the new posting with a stale
	// influential-user set.
	//
	// mu is the root of the module's lock hierarchy: it is held while the
	// substrate locks below are acquired, never the reverse. Declared
	// edges (checked by microlint/deadlockcheck, documented in DESIGN.md §6):
	//
	// microlint:lock-order linker < interest-shard
	// microlint:lock-order linker < ckb
	// microlint:lock-order linker < influence
	// microlint:lock-order linker < recency-memo
	mu sync.RWMutex // microlint:lock-order linker

	// met is the instrumentation set, published atomically by Instrument
	// so hot-path readers never race the one-time wiring. Nil until
	// Instrument runs; read through metrics(), never directly.
	met atomic.Pointer[linkerMetrics]
}

// linkerMetrics holds the hot-path instrumentation. All fields are nil
// until Instrument wires a registry; the obs types are nil-safe, so the
// scoring path records unconditionally.
type linkerMetrics struct {
	stage        *obs.HistogramVec // microlink_linker_stage_seconds{stage}
	link         *obs.Histogram    // microlink_linker_link_seconds
	mentions     *obs.Counter      // microlink_linker_mentions_total
	misses       *obs.Counter      // microlink_linker_unlinkable_total
	tweets       *obs.Counter      // microlink_linker_tweets_total
	feedback     *obs.Counter      // microlink_linker_feedback_total
	cacheHits    *obs.Counter      // microlink_linker_interest_cache_hits_total
	cacheMisses  *obs.Counter      // microlink_linker_interest_cache_misses_total
	batchSize    *obs.Histogram    // microlink_linker_batch_size_queries
	batchWorkers *obs.Gauge        // microlink_linker_batch_workers_active
}

// New assembles a Linker from its substrates.
func New(ckb *kb.Complemented, cand *candidate.Index, rx reach.Index, inf *influence.Estimator, rec *recency.Scorer, cfg Config) *Linker {
	cfg.fill()
	l := &Linker{ckb: ckb, cand: cand, reach: rx, inf: inf, rec: rec, cfg: cfg}
	if !cfg.Batch.DisableInterestCache {
		l.cache = newInterestCache(ckb.KB().NumEntities(), cfg.Batch.CacheEntriesPerShard)
	}
	return l
}

// Name implements the eval.Linker convention.
func (l *Linker) Name() string { return "social-temporal" }

// Config returns the effective configuration.
func (l *Linker) Config() Config { return l.cfg }

// Instrument registers the linker's hot-path metrics in reg and starts
// recording: per-stage latency histograms for the four Eq. 1 sections
// (candidate, popularity, recency, interest), the end-to-end per-mention
// latency, mention/tweet/feedback counters, interest-cache hit/miss
// counters, the batch-size histogram, and the batch pool-depth gauge.
func (l *Linker) Instrument(reg *obs.Registry) {
	l.met.Store(&linkerMetrics{
		stage: reg.HistogramVec("microlink_linker_stage_seconds",
			"Per-stage Eq. 1 scoring latency.", nil, "stage"),
		link: reg.Histogram("microlink_linker_link_seconds",
			"End-to-end per-mention linking latency.", nil),
		mentions: reg.Counter("microlink_linker_mentions_total",
			"Mentions scored."),
		misses: reg.Counter("microlink_linker_unlinkable_total",
			"Mentions with no candidate entities."),
		tweets: reg.Counter("microlink_linker_tweets_total",
			"Tweets linked via LinkTweet."),
		feedback: reg.Counter("microlink_linker_feedback_total",
			"Confirmed links appended via the interactive feedback path."),
		cacheHits: reg.Counter("microlink_linker_interest_cache_hits_total",
			"Interest-cache lookups answered without reachability averaging."),
		cacheMisses: reg.Counter("microlink_linker_interest_cache_misses_total",
			"Interest-cache lookups that recomputed Eq. 8."),
		batchSize: reg.Histogram("microlink_linker_batch_size_queries",
			"Queries per LinkBatch call.", obs.ExpBuckets(1, 2, 12)),
		batchWorkers: reg.Gauge("microlink_linker_batch_workers_active",
			"Batch pool workers currently scoring a query group."),
	})
}

// metrics returns the active instrumentation, or a shared zero value
// before Instrument runs — the obs types are nil-safe, so callers
// record unconditionally either way.
func (l *Linker) metrics() *linkerMetrics {
	if m := l.met.Load(); m != nil {
		return m
	}
	return &zeroLinkerMetrics
}

// zeroLinkerMetrics backs metrics() on uninstrumented linkers.
var zeroLinkerMetrics linkerMetrics

// StageStats returns a snapshot of the per-stage latency histograms keyed
// by stage name (candidate, popularity, recency, interest), or nil when
// the linker is uninstrumented.
func (l *Linker) StageStats() map[string]obs.HistogramSnapshot {
	return l.metrics().stage.Snapshots()
}

// CacheStats returns the interest cache's hit/miss counts since
// Instrument. Both are zero on an uninstrumented or cache-disabled linker.
func (l *Linker) CacheStats() (hits, misses uint64) {
	return l.metrics().cacheHits.Value(), l.metrics().cacheMisses.Value()
}

// sharedScores is the user-independent part of one Eq. 1 evaluation: the
// candidate set for a surface plus its normalised popularity and recency
// vectors at one instant. Queries that differ only in the querying user
// can share it (LinkBatch does); it must not outlive the read-locked
// critical section it was computed in.
type sharedScores struct {
	ents    []kb.EntityID
	setHash uint64 // candidate-set stamp for the interest cache
	pops    []float64
	recs    []float64
}

// sharedLocked computes the candidate, popularity and recency stages.
// Returns nil when the surface has no candidates. Callers hold mu.RLock.
func (l *Linker) sharedLocked(now int64, surface string) *sharedScores {
	sw := obs.StartStopwatch(l.metrics().stage)

	cands := l.cand.Candidates(surface)
	sw.Stage("candidate")
	if len(cands) == 0 {
		return nil
	}
	ents := candidate.Entities(cands)

	// S_p (Eq. 2): complemented-KB tweet counts normalised over E_m.
	pops := make([]float64, len(ents))
	var popSum float64
	for i, e := range ents {
		pops[i] = float64(l.ckb.Count(e))
		popSum += pops[i]
	}
	if popSum > 0 {
		for i := range pops {
			pops[i] /= popSum
		}
	}
	sw.Stage("popularity")

	// S_r (Eq. 9 + 11).
	recs := l.rec.Scores(now, ents)
	sw.Stage("recency")

	return &sharedScores{ents: ents, setHash: hashEntitySet(ents), pops: pops, recs: recs}
}

// finishLocked computes the user-dependent interest stage against sh and
// combines Eq. 1, sorted by descending score (ties by ascending entity
// ID). Callers hold mu.RLock.
func (l *Linker) finishLocked(ctx context.Context, u kb.UserID, sh *sharedScores) ([]Scored, error) {
	sw := obs.StartStopwatch(l.metrics().stage)
	ints, err := l.interests(ctx, u, sh)
	if err != nil {
		return nil, err
	}
	sw.Stage("interest")

	out := make([]Scored, len(sh.ents))
	for i, e := range sh.ents {
		out[i] = Scored{
			Entity:     e,
			Interest:   ints[i],
			Recency:    sh.recs[i],
			Popularity: sh.pops[i],
		}
		out[i].Score = l.cfg.WInterest*out[i].Interest +
			l.cfg.WRecency*out[i].Recency +
			l.cfg.WPopularity*out[i].Popularity
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	return out, nil
}

// interests computes the S_in vector (Eq. 8) for u over sh.ents, floored
// by MinInterest and normalised over the candidate set. Like S_p (Eq. 2)
// and S_r (Eq. 9) it is normalised so the three features of Eq. 1 mix on
// a common scale; the paper normalises the other two explicitly and
// leaves Eq. 8 raw, which would let a structurally small reachability
// value be drowned by the normalised features.
//
// When the amount of work — len(ents) candidates × TopInfluential
// reachability reads each — exceeds the configured threshold, the
// per-candidate computations fan out across a bounded worker pool: each
// is an independent read (reach.R and the influence cache are
// concurrent-safe, and the caller's read lock spans the fan-out).
func (l *Linker) interests(ctx context.Context, u kb.UserID, sh *sharedScores) ([]float64, error) {
	ints := make([]float64, len(sh.ents))
	if l.fanOutInterest(len(sh.ents)) {
		if err := l.interestsParallel(ctx, u, sh, ints); err != nil {
			return nil, err
		}
	} else {
		for i, e := range sh.ents {
			if i&7 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			ints[i] = l.cachedInterest(u, e, sh)
		}
	}
	var sum float64
	for i := range ints {
		if ints[i] < l.cfg.MinInterest {
			ints[i] = 0 // small-world noise, not interest
		}
		sum += ints[i]
	}
	if sum > 0 {
		for i := range ints {
			ints[i] /= sum
		}
	}
	return ints, nil
}

// fanOutInterest reports whether the interest stage should use the worker
// pool: enough independent work to amortise goroutine handoff, and more
// than one P to run it on.
func (l *Linker) fanOutInterest(numCands int) bool {
	thr := l.cfg.Batch.ParallelInterestThreshold
	return thr > 0 && numCands*l.cfg.TopInfluential > thr && runtime.GOMAXPROCS(0) > 1
}

func (l *Linker) interestsParallel(ctx context.Context, u kb.UserID, sh *sharedScores, ints []float64) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sh.ents) {
		workers = len(sh.ents)
	}
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sh.ents) || cancelled.Load() {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				ints[i] = l.cachedInterest(u, sh.ents[i], sh)
			}
		}()
	}
	wg.Wait()
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// cachedInterest answers S_in(u, e) from the interest cache when a live
// entry exists, computing and storing it otherwise. Callers hold mu.RLock,
// which makes the generation read + compute + store atomic with respect to
// Feedback's invalidation bumps.
func (l *Linker) cachedInterest(u kb.UserID, e kb.EntityID, sh *sharedScores) float64 {
	if l.cache == nil {
		return l.interest(u, e, sh.ents)
	}
	if v, ok := l.cache.get(u, e, sh.setHash); ok {
		l.metrics().cacheHits.Inc()
		return v
	}
	v := l.interest(u, e, sh.ents)
	l.cache.put(u, e, sh.setHash, v)
	l.metrics().cacheMisses.Inc()
	return v
}

// ScoreCandidatesCtx generates E_m for surface and scores every candidate
// by Eq. 1 for the given author and time, sorted by descending score (ties
// by ascending entity ID). An unknown surface yields nil with a nil error.
// The context is observed between scoring stages and inside the interest
// loop: cancellation or an expired deadline aborts with ctx.Err(), and the
// deadline propagates into nothing blocking — every stage is pure
// in-memory computation, so the check granularity is a few microseconds.
func (l *Linker) ScoreCandidatesCtx(ctx context.Context, u kb.UserID, now int64, surface string) ([]Scored, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.metrics().mentions.Inc()
	total := obs.StartSpan(l.metrics().link)
	defer total.Stop()

	sh := l.sharedLocked(now, surface)
	if sh == nil {
		l.metrics().misses.Inc()
		return nil, nil
	}
	return l.finishLocked(ctx, u, sh)
}

// ScoreCandidates is ScoreCandidatesCtx with a background context.
func (l *Linker) ScoreCandidates(u kb.UserID, now int64, surface string) []Scored {
	//nolint:microlint/errdrop -- background context cannot be cancelled, so the error is impossible here
	out, _ := l.ScoreCandidatesCtx(context.Background(), u, now, surface)
	return out
}

// interest computes S_in(u, e) over the influential users U_e* (Eq. 8), or
// the whole community (Eq. 3) when configured.
func (l *Linker) interest(u kb.UserID, e kb.EntityID, ents []kb.EntityID) float64 {
	var users []kb.UserID
	if l.cfg.WholeCommunity {
		users = l.ckb.Community(e)
	} else {
		users = l.inf.TopInfluential(e, ents, l.cfg.TopInfluential)
	}
	if len(users) == 0 {
		return 0
	}
	var sum float64
	for _, v := range users {
		sum += l.reach.R(u, v)
	}
	return sum / float64(len(users))
}

// LinkMentionCtx links one mention to its best entity. ok is false when
// the surface has no candidates; a non-nil error reports context
// cancellation or deadline expiry.
func (l *Linker) LinkMentionCtx(ctx context.Context, u kb.UserID, now int64, surface string) (kb.EntityID, bool, error) {
	scored, err := l.ScoreCandidatesCtx(ctx, u, now, surface)
	if err != nil || len(scored) == 0 {
		return kb.NoEntity, false, err
	}
	return scored[0].Entity, true, nil
}

// LinkMention is LinkMentionCtx with a background context.
func (l *Linker) LinkMention(u kb.UserID, now int64, surface string) (kb.EntityID, bool) {
	//nolint:microlint/errdrop -- background context cannot be cancelled, so the error is impossible here
	e, ok, _ := l.LinkMentionCtx(context.Background(), u, now, surface)
	return e, ok
}

// NewEntityThreshold returns β+γ — the score ceiling of any candidate the
// user has no interest in (Appendix D). TopK entries at or below it are
// suppressed so that mentions of entities missing from the KB produce an
// empty result rather than a false positive.
func (l *Linker) NewEntityThreshold() float64 { return l.cfg.WRecency + l.cfg.WPopularity }

// TopKCtx returns up to k candidates whose score strictly exceeds the
// new-entity threshold. An empty result signals that the mention likely
// refers to an entity or meaning absent from the knowledgebase.
func (l *Linker) TopKCtx(ctx context.Context, u kb.UserID, now int64, surface string, k int) ([]Scored, error) {
	scored, err := l.ScoreCandidatesCtx(ctx, u, now, surface)
	if err != nil {
		return nil, err
	}
	thr := l.NewEntityThreshold()
	out := scored[:0:0]
	for _, s := range scored {
		if s.Score <= thr {
			continue
		}
		out = append(out, s)
		if len(out) == k {
			break
		}
	}
	return out, nil
}

// TopK is TopKCtx with a background context.
func (l *Linker) TopK(u kb.UserID, now int64, surface string, k int) []Scored {
	//nolint:microlint/errdrop -- background context cannot be cancelled, so the error is impossible here
	out, _ := l.TopKCtx(context.Background(), u, now, surface, k)
	return out
}

// LinkTweet links every mention of tw independently (§1.1's third
// difference: no joint inference), returning one entity per mention.
func (l *Linker) LinkTweet(tw *tweets.Tweet) []kb.EntityID {
	l.metrics().tweets.Inc()
	out := make([]kb.EntityID, len(tw.Mentions))
	for i, m := range tw.Mentions {
		e, ok := l.LinkMention(tw.User, tw.Time, m.Surface)
		if !ok {
			e = kb.NoEntity
		}
		out[i] = e
	}
	return out
}

// Feedback implements the interactive update path of §3.2.2: once the
// linking of tw is confirmed, the tweet is appended to the complemented
// knowledgebase under each linked entity, and the cached influential-user
// sets and interest values of those entities are invalidated. links must
// be parallel to tw.Mentions; kb.NoEntity entries are skipped.
func (l *Linker) Feedback(tw *tweets.Tweet, links []kb.EntityID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range links {
		if e == kb.NoEntity {
			continue
		}
		l.ckb.Link(e, kb.Posting{Tweet: tw.ID, User: tw.User, Time: tw.Time})
		l.inf.Invalidate(e)
		l.cache.invalidateEntity(e)
		l.metrics().feedback.Inc()
	}
}

// UpdateReachability runs fn — a mutation of the reachability substrate,
// e.g. a dynamic-closure edge insertion — under the linker's write lock,
// excluding every concurrent scorer, then drops all cached interest
// values (a repaired edge can move any user's weighted reachability, so
// every cached S_in is suspect). The facade's Follow path uses it; the
// dynamic closure itself is not concurrency-safe, so routing mutations
// through here is what makes reach.R safe to read behind the RWMutex.
func (l *Linker) UpdateReachability(fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if fn != nil {
		fn()
	}
	l.cache.invalidateAll()
}

// InvalidateReachability drops every cached interest value without
// mutating the substrate — for callers that changed reachability out of
// band and only need the cache flushed.
func (l *Linker) InvalidateReachability() { l.UpdateReachability(nil) }
