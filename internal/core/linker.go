// Package core implements the paper's entity linker (§3.2): on-the-fly,
// per-mention scoring of candidate entities by the social-temporal
// context of Eq. 1,
//
//	S(e) = α·S_in(u,e) + β·S_r(e) + γ·S_p(e)
//
// combining user interest via weighted reachability to influential
// community members (Eq. 8), entity recency with propagation (Eq. 9/11),
// and entity popularity (Eq. 2). Mentions are linked independently — no
// intra- or inter-tweet joint inference — which is what makes the
// framework fast enough for stream-rate linking.
//
// Naming note: the paper's α/β/γ are internally inconsistent (Eq. 1 binds
// β to popularity and γ to recency, while Table 3, Table 4 and Fig. 6(d)
// clearly treat β as recency and γ as popularity, e.g. "β=1" scoring
// between interest and popularity). Config uses explicit field names;
// Table 3's defaults are α=0.6, recency 0.3, popularity 0.1.
package core

import (
	"sort"
	"sync"

	"microlink/internal/candidate"
	"microlink/internal/influence"
	"microlink/internal/kb"
	"microlink/internal/obs"
	"microlink/internal/reach"
	"microlink/internal/recency"
	"microlink/internal/tweets"
)

// Config weighs the three features of Eq. 1 and sizes the influential-user
// truncation of Eq. 8. Zero values select the paper's defaults (Table 3).
type Config struct {
	WInterest   float64 // α: user interest weight (default 0.6)
	WRecency    float64 // β: entity recency weight (default 0.3)
	WPopularity float64 // γ: entity popularity weight (default 0.1)
	// TopInfluential is the number of most influential users whose
	// weighted reachability is averaged in Eq. 8 (§4.1.2). ≤ 0 selects the
	// default 5; set to -1 … no: use WholeCommunity to disable truncation.
	TopInfluential int
	// WholeCommunity disables influential-user truncation and averages
	// reachability over the entire community U_e (Eq. 3) — the expensive
	// variant of Fig. 5(c).
	WholeCommunity bool
	// MinInterest floors the raw per-candidate interest before
	// normalisation: averages below it (incidental long multi-hop paths —
	// the small-world noise §4.1.1 warns about: "reachable does not mean
	// interested") are treated as no interest at all, so that a user with
	// no real interest in any candidate lets recency and popularity
	// decide. ≤ 0 selects the default 0.05; pass a tiny positive value
	// (e.g. 1e-12) to effectively disable the floor.
	MinInterest float64
}

func (c *Config) fill() {
	if c.WInterest == 0 && c.WRecency == 0 && c.WPopularity == 0 {
		c.WInterest, c.WRecency, c.WPopularity = 0.6, 0.3, 0.1
	}
	if c.TopInfluential <= 0 {
		c.TopInfluential = 5
	}
	if c.MinInterest <= 0 {
		c.MinInterest = 0.05
	}
}

// Scored is one ranked candidate with its feature breakdown.
type Scored struct {
	Entity     kb.EntityID
	Score      float64
	Interest   float64 // S_in(u, e)
	Recency    float64 // S_r(e)
	Popularity float64 // S_p(e)
}

// Linker is the paper's prototype system. Scoring paths are safe for
// concurrent use; Feedback takes the write side of mu so the multi-step
// KB append + cache invalidation of §3.2.2 is atomic with respect to
// concurrent scoring.
type Linker struct {
	ckb   *kb.Complemented
	cand  *candidate.Index
	reach reach.Index
	inf   *influence.Estimator
	rec   *recency.Scorer
	cfg   Config

	// mu serialises the interactive feedback path (write) against scoring
	// (read). The substrates lock individually, but Feedback spans two of
	// them (complemented KB, influence cache); without this lock a scorer
	// can observe the new posting with a stale influential-user set.
	mu  sync.RWMutex
	met linkerMetrics
}

// linkerMetrics holds the hot-path instrumentation. All fields are nil
// until Instrument wires a registry; the obs types are nil-safe, so the
// scoring path records unconditionally.
type linkerMetrics struct {
	stage    *obs.HistogramVec // microlink_linker_stage_seconds{stage}
	link     *obs.Histogram    // microlink_linker_link_seconds
	mentions *obs.Counter      // microlink_linker_mentions_total
	misses   *obs.Counter      // microlink_linker_unlinkable_total
	tweets   *obs.Counter      // microlink_linker_tweets_total
	feedback *obs.Counter      // microlink_linker_feedback_total
}

// New assembles a Linker from its substrates.
func New(ckb *kb.Complemented, cand *candidate.Index, rx reach.Index, inf *influence.Estimator, rec *recency.Scorer, cfg Config) *Linker {
	cfg.fill()
	return &Linker{ckb: ckb, cand: cand, reach: rx, inf: inf, rec: rec, cfg: cfg}
}

// Name implements the eval.Linker convention.
func (l *Linker) Name() string { return "social-temporal" }

// Config returns the effective configuration.
func (l *Linker) Config() Config { return l.cfg }

// Instrument registers the linker's hot-path metrics in reg and starts
// recording: per-stage latency histograms for the four Eq. 1 sections
// (candidate, popularity, recency, interest), the end-to-end per-mention
// latency, and mention/tweet/feedback counters.
func (l *Linker) Instrument(reg *obs.Registry) {
	l.met = linkerMetrics{
		stage: reg.HistogramVec("microlink_linker_stage_seconds",
			"Per-stage Eq. 1 scoring latency.", nil, "stage"),
		link: reg.Histogram("microlink_linker_link_seconds",
			"End-to-end per-mention linking latency.", nil),
		mentions: reg.Counter("microlink_linker_mentions_total",
			"Mentions scored."),
		misses: reg.Counter("microlink_linker_unlinkable_total",
			"Mentions with no candidate entities."),
		tweets: reg.Counter("microlink_linker_tweets_total",
			"Tweets linked via LinkTweet."),
		feedback: reg.Counter("microlink_linker_feedback_total",
			"Confirmed links appended via the interactive feedback path."),
	}
}

// StageStats returns a snapshot of the per-stage latency histograms keyed
// by stage name (candidate, popularity, recency, interest), or nil when
// the linker is uninstrumented.
func (l *Linker) StageStats() map[string]obs.HistogramSnapshot {
	return l.met.stage.Snapshots()
}

// ScoreCandidates generates E_m for surface and scores every candidate by
// Eq. 1 for the given author and time, sorted by descending score (ties by
// ascending entity ID). An unknown surface yields nil.
func (l *Linker) ScoreCandidates(u kb.UserID, now int64, surface string) []Scored {
	l.mu.RLock()
	defer l.mu.RUnlock()
	l.met.mentions.Inc()
	total := obs.StartSpan(l.met.link)
	sw := obs.StartStopwatch(l.met.stage)

	cands := l.cand.Candidates(surface)
	sw.Stage("candidate")
	if len(cands) == 0 {
		l.met.misses.Inc()
		total.Stop()
		return nil
	}
	ents := candidate.Entities(cands)

	// S_p (Eq. 2): complemented-KB tweet counts normalised over E_m.
	pops := make([]float64, len(ents))
	var popSum float64
	for i, e := range ents {
		pops[i] = float64(l.ckb.Count(e))
		popSum += pops[i]
	}
	if popSum > 0 {
		for i := range pops {
			pops[i] /= popSum
		}
	}
	sw.Stage("popularity")

	// S_r (Eq. 9 + 11).
	recs := l.rec.Scores(now, ents)
	sw.Stage("recency")

	// S_in (Eq. 8): average weighted reachability to the most influential
	// community members. Like S_p (Eq. 2) and S_r (Eq. 9) it is
	// normalised over the candidate set, so the three features of Eq. 1
	// mix on a common scale; the paper normalises the other two
	// explicitly and leaves Eq. 8 raw, which would let a structurally
	// small reachability value be drowned by the normalised features.
	ints := make([]float64, len(ents))
	var intSum float64
	for i, e := range ents {
		ints[i] = l.interest(u, e, ents)
		if ints[i] < l.cfg.MinInterest {
			ints[i] = 0 // small-world noise, not interest
		}
		intSum += ints[i]
	}
	if intSum > 0 {
		for i := range ints {
			ints[i] /= intSum
		}
	}
	sw.Stage("interest")

	out := make([]Scored, len(ents))
	for i, e := range ents {
		out[i] = Scored{
			Entity:     e,
			Interest:   ints[i],
			Recency:    recs[i],
			Popularity: pops[i],
		}
		out[i].Score = l.cfg.WInterest*out[i].Interest +
			l.cfg.WRecency*out[i].Recency +
			l.cfg.WPopularity*out[i].Popularity
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	total.Stop()
	return out
}

// interest computes S_in(u, e) over the influential users U_e* (Eq. 8), or
// the whole community (Eq. 3) when configured.
func (l *Linker) interest(u kb.UserID, e kb.EntityID, ents []kb.EntityID) float64 {
	var users []kb.UserID
	if l.cfg.WholeCommunity {
		users = l.ckb.Community(e)
	} else {
		users = l.inf.TopInfluential(e, ents, l.cfg.TopInfluential)
	}
	if len(users) == 0 {
		return 0
	}
	var sum float64
	for _, v := range users {
		sum += l.reach.R(u, v)
	}
	return sum / float64(len(users))
}

// LinkMention links one mention to its best entity. ok is false when the
// surface has no candidates.
func (l *Linker) LinkMention(u kb.UserID, now int64, surface string) (kb.EntityID, bool) {
	scored := l.ScoreCandidates(u, now, surface)
	if len(scored) == 0 {
		return kb.NoEntity, false
	}
	return scored[0].Entity, true
}

// NewEntityThreshold returns β+γ — the score ceiling of any candidate the
// user has no interest in (Appendix D). TopK entries at or below it are
// suppressed so that mentions of entities missing from the KB produce an
// empty result rather than a false positive.
func (l *Linker) NewEntityThreshold() float64 { return l.cfg.WRecency + l.cfg.WPopularity }

// TopK returns up to k candidates whose score strictly exceeds the
// new-entity threshold. An empty result signals that the mention likely
// refers to an entity or meaning absent from the knowledgebase.
func (l *Linker) TopK(u kb.UserID, now int64, surface string, k int) []Scored {
	scored := l.ScoreCandidates(u, now, surface)
	thr := l.NewEntityThreshold()
	out := scored[:0:0]
	for _, s := range scored {
		if s.Score <= thr {
			continue
		}
		out = append(out, s)
		if len(out) == k {
			break
		}
	}
	return out
}

// LinkTweet links every mention of tw independently (§1.1's third
// difference: no joint inference), returning one entity per mention.
func (l *Linker) LinkTweet(tw *tweets.Tweet) []kb.EntityID {
	l.met.tweets.Inc()
	out := make([]kb.EntityID, len(tw.Mentions))
	for i, m := range tw.Mentions {
		e, ok := l.LinkMention(tw.User, tw.Time, m.Surface)
		if !ok {
			e = kb.NoEntity
		}
		out[i] = e
	}
	return out
}

// Feedback implements the interactive update path of §3.2.2: once the
// linking of tw is confirmed, the tweet is appended to the complemented
// knowledgebase under each linked entity and the cached influential-user
// sets of those entities are invalidated. links must be parallel to
// tw.Mentions; kb.NoEntity entries are skipped.
func (l *Linker) Feedback(tw *tweets.Tweet, links []kb.EntityID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range links {
		if e == kb.NoEntity {
			continue
		}
		l.ckb.Link(e, kb.Posting{Tweet: tw.ID, User: tw.User, Time: tw.Time})
		l.inf.Invalidate(e)
		l.met.feedback.Inc()
	}
}
