package microlink

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"microlink/internal/reach"
	"microlink/internal/store"
	"microlink/internal/synth"
)

// persistWorldParams is shared by the persistence tests and the crash
// child, which re-exec's this binary and must regenerate the identical
// world.
var persistWorldParams = WorldParams{Seed: 5, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20}

func persistWorld() *World { return Generate(persistWorldParams) }

// topKDump serialises a deterministic probe of the linker — every
// ambiguous surface for a spread of users — as JSON. Two systems serving
// identical answers produce byte-identical dumps.
func topKDump(t *testing.T, sys *System, w *World) []byte {
	t.Helper()
	now := w.Horizon() + 7200
	surfaces := ambiguousStreamSurfaces(w)
	sort.Strings(surfaces) // EachSurface iterates a map; pin the probe set
	if len(surfaces) > 8 {
		surfaces = surfaces[:8]
	}
	type probe struct {
		User    UserID
		Surface string
		TopK    []Scored
	}
	var probes []probe
	for u := 0; u < w.Graph.NumNodes(); u += 37 {
		for _, sf := range surfaces {
			probes = append(probes, probe{
				User:    UserID(u),
				Surface: sf,
				TopK:    sys.Linker.TopK(UserID(u), now, sf, 3),
			})
		}
	}
	b, err := json.Marshal(probes)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// drainTo submits events [lo, hi) of stream into pipe, blocking on a
// full queue.
func drainTo(t *testing.T, pipe *IngestPipeline, stream []synth.StreamEvent, lo, hi int) {
	t.Helper()
	ctx := context.Background()
	for _, ev := range stream[lo:hi] {
		var e IngestEvent
		if ev.Tweet != nil {
			e = TweetEvent(ev.Tweet, nil)
		} else {
			e = FollowEvent(ev.U, ev.V)
		}
		if err := pipe.Submit(ctx, e); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotOpenRoundTrip is the warm-restart happy path: snapshot a
// streaming system mid-firehose, keep ingesting (those events tee into
// the WAL), shut down cleanly, Open the directory, and require the
// recovered system to serve byte-identical answers.
func TestSnapshotOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := persistWorld()
	opts := Options{Reach: ReachStreaming, TruthComplement: true}
	sys := Build(w, opts)
	pipe, err := sys.StartIngest(IngestConfig{BlockOnFull: true, RebuildAfterEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	stream := synth.GenerateStream(w, synth.StreamParams{Seed: 9, Events: 400, FollowFraction: 0.3})

	drainTo(t, pipe, stream, 0, 200)
	info, err := sys.Snapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 1 || info.Dir != dir {
		t.Fatalf("snapshot info = %+v", info)
	}
	drainTo(t, pipe, stream, 200, 400)
	if err := pipe.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := sys.Persist()
	if !st.Enabled || st.SnapshotSeq != 1 || st.WALRecords == 0 {
		t.Fatalf("persist status = %+v", st)
	}
	if stats := pipe.Stats(); stats.JournalFailures != 0 {
		t.Fatalf("journal failures: %d", stats.JournalFailures)
	}
	if err := sys.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	sys2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seq != 1 {
		t.Fatalf("restored seq %d, want 1", rep.Seq)
	}
	if rep.Tweets == 0 || rep.Follows == 0 {
		t.Fatalf("replay touched no events: %+v", rep)
	}
	if rep.TornTail {
		t.Fatal("clean shutdown reported a torn tail")
	}
	if rep.WALRecords != rep.Tweets+rep.Follows+rep.Feedback {
		t.Fatalf("record accounting: %+v", rep)
	}
	if _, ok := unwrapReach(sys2.Reach).(*reach.Streaming); !ok {
		t.Fatalf("restored substrate %T, want *reach.Streaming", unwrapReach(sys2.Reach))
	}
	if sys2.Live.Len() != sys.Live.Len() {
		t.Fatalf("live corpus: restored %d, original %d", sys2.Live.Len(), sys.Live.Len())
	}
	if sys2.CKB.TotalCount() != sys.CKB.TotalCount() {
		t.Fatalf("ckb postings: restored %d, original %d", sys2.CKB.TotalCount(), sys.CKB.TotalCount())
	}

	// Align the frozen arenas with the live graphs on both sides, then
	// require byte-identical rankings.
	pipe.ForceRebuild()
	if err := sys2.RebuildReach(); err != nil {
		t.Fatal(err)
	}
	if got, want := topKDump(t, sys2, w), topKDump(t, sys, w); !bytes.Equal(got, want) {
		t.Fatal("restored system serves different answers")
	}
	if err := sys2.ClosePersist(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotOpenClosure covers the pipeline-less substrates: a
// transitive-closure system snapshots and reopens with identical
// answers and no WAL traffic.
func TestSnapshotOpenClosure(t *testing.T) {
	dir := t.TempDir()
	w := persistWorld()
	sys := Build(w, Options{Reach: ReachClosure, TruthComplement: true})
	if _, err := sys.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	sys2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WALRecords != 0 {
		t.Fatalf("closure snapshot replayed %d records", rep.WALRecords)
	}
	if _, ok := unwrapReach(sys2.Reach).(*reach.TransitiveClosure); !ok {
		t.Fatalf("restored substrate %T, want *reach.TransitiveClosure", unwrapReach(sys2.Reach))
	}
	if got, want := topKDump(t, sys2, w), topKDump(t, sys, w); !bytes.Equal(got, want) {
		t.Fatal("restored closure system serves different answers")
	}
}

// TestSnapshotErrors covers the API edges: snapshotting with no
// directory bound, rebinding to a different directory, and the
// non-snapshottable substrates.
func TestSnapshotErrors(t *testing.T) {
	w := persistWorld()
	sys := Build(w, Options{Reach: ReachClosure, TruthComplement: true})
	if _, err := sys.SnapshotNow(); !errors.Is(err, ErrNoStore) {
		t.Fatalf("SnapshotNow unbound: %v", err)
	}
	if st := sys.Persist(); st.Enabled {
		t.Fatal("unbound system reports persistence enabled")
	}
	dir := t.TempDir()
	if _, err := sys.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(t.TempDir()); err == nil {
		t.Fatal("rebinding to a second directory succeeded")
	}
	if _, err := sys.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow bound: %v", err)
	}
	if st := sys.Persist(); !st.Enabled || st.SnapshotSeq != 2 {
		t.Fatalf("persist status = %+v", st)
	}

	naive := Build(w, Options{Reach: ReachNaive, TruthComplement: true})
	if _, err := naive.Snapshot(t.TempDir()); !errors.Is(err, ErrNotSnapshottable) {
		t.Fatalf("naive snapshot: %v", err)
	}
	if _, _, err := Open(t.TempDir(), Options{}); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("open empty dir: %v", err)
	}
}

// snapshotClosureDir commits one closure snapshot of the shared world
// and returns the directory and manifest, for the corruption matrix.
func snapshotClosureDir(t *testing.T) (string, *store.Manifest) {
	t.Helper()
	dir := t.TempDir()
	sys := Build(persistWorld(), Options{Reach: ReachClosure, TruthComplement: true})
	if _, err := sys.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	var man store.Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	return dir, &man
}

// TestOpenWrongWorld tampers the manifest's world parameters so the
// regenerated graph no longer matches the persisted one; Open must fail
// with the typed graph-mismatch error, not serve wrong answers.
func TestOpenWrongWorld(t *testing.T) {
	dir, man := snapshotClosureDir(t)
	man.World.Users += 50
	b, err := json.Marshal(man)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, reach.ErrGraphMismatch) {
		t.Fatalf("open with tampered world: %v", err)
	}
}

// TestOpenCorruptSegment flips one payload byte in each segment kind and
// requires Open to surface the store's typed errors.
func TestOpenCorruptSegment(t *testing.T) {
	for _, seg := range []string{"graph", "ckb", "tweets", "reach"} {
		t.Run(seg, func(t *testing.T) {
			dir, man := snapshotClosureDir(t)
			path := filepath.Join(dir, man.Segments[seg])
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)/2] ^= 0xFF
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err = Open(dir, Options{})
			if err == nil {
				t.Fatal("open succeeded on a corrupt segment")
			}
			// The reach segment uses the reach package's own framing and
			// surfaces its typed error; the rest are store segments.
			if seg == "reach" {
				if !errors.Is(err, reach.ErrFormat) && !errors.Is(err, reach.ErrGraphMismatch) {
					t.Fatalf("reach corruption: %v", err)
				}
			} else if !errors.Is(err, store.ErrSegment) {
				t.Fatalf("%s corruption: %v", seg, err)
			}
		})
	}
}

// TestOpenManifestDamage requires a damaged manifest to surface
// ErrManifest through the facade.
func TestOpenManifestDamage(t *testing.T) {
	dir, _ := snapshotClosureDir(t)
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, store.ErrManifest) {
		t.Fatalf("open with damaged manifest: %v", err)
	}
}

// TestOpenTornWAL truncates the final WAL record mid-frame — the kill -9
// signature — and requires Open to succeed, report the torn tail, and
// keep every fully-written record.
func TestOpenTornWAL(t *testing.T) {
	dir := t.TempDir()
	w := persistWorld()
	sys := Build(w, Options{Reach: ReachStreaming, TruthComplement: true})
	pipe, err := sys.StartIngest(IngestConfig{BlockOnFull: true, RebuildAfterEdges: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	stream := synth.GenerateStream(w, synth.StreamParams{Seed: 10, Events: 120, FollowFraction: 0.3})
	drainTo(t, pipe, stream, 0, len(stream))
	if err := pipe.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.ClosePersist(); err != nil {
		t.Fatal(err)
	}

	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no WAL files: %v", err)
	}
	last := wals[len(wals)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	_, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail {
		t.Fatal("truncated WAL not reported as torn")
	}
	if rep.WALRecords == 0 {
		t.Fatal("torn tail dropped every record")
	}
}

// crashChildEnv points the re-exec'd crash child at its data directory.
const crashChildEnv = "MICROLINK_CRASH_DIR"

// TestCrashChild is the helper process of TestCrashRecovery: it
// snapshots an empty streaming system, then ingests a firehose forever,
// printing applied-event progress until the parent SIGKILLs it.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("helper process for TestCrashRecovery")
	}
	w := persistWorld()
	sys := Build(w, Options{Reach: ReachStreaming, TruthComplement: true})
	pipe, err := sys.StartIngest(IngestConfig{BlockOnFull: true, RebuildAfterEdges: -1})
	if err != nil {
		fmt.Printf("child-error: %v\n", err)
		return
	}
	if _, err := sys.Snapshot(dir); err != nil {
		fmt.Printf("child-error: %v\n", err)
		return
	}
	fmt.Println("snapshotted")
	stream := synth.GenerateStream(w, synth.StreamParams{Seed: 11, Events: 20000, FollowFraction: 0.3})
	ctx := context.Background()
	for i, ev := range stream {
		var e IngestEvent
		if ev.Tweet != nil {
			e = TweetEvent(ev.Tweet, nil)
		} else {
			e = FollowEvent(ev.U, ev.V)
		}
		if err := pipe.Submit(ctx, e); err != nil {
			fmt.Printf("child-error: %v\n", err)
			return
		}
		if i%50 == 49 {
			s := pipe.Stats()
			fmt.Printf("applied %d\n", s.AppliedTweets+s.AppliedFollows)
		}
	}
	// Stream exhausted before the parent killed us; idle so SIGKILL is
	// still the only way out.
	select {}
}

// TestCrashRecovery is the acceptance story: SIGKILL a child mid-
// firehose, Open its data directory, and require answers byte-identical
// to a reference system built fresh and fed the surviving WAL records
// directly. The WAL is the acknowledgement boundary — whatever it holds
// after the kill is exactly what the recovered system must serve.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash test skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()
	timer := time.AfterFunc(90*time.Second, func() { _ = cmd.Process.Kill() })
	defer timer.Stop()

	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "child-error:") {
			t.Fatalf("crash child failed: %s", line)
		}
		if n, ok := strings.CutPrefix(line, "applied "); ok {
			applied, err := strconv.ParseInt(n, 10, 64)
			if err != nil {
				t.Fatalf("bad progress line %q", line)
			}
			if applied >= 400 {
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL, mid-ingest
		t.Fatal(err)
	}
	killed = true
	_ = cmd.Wait()

	sys2, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if rep.WALRecords == 0 {
		t.Fatal("kill landed before any WAL append; nothing recovered")
	}
	t.Logf("recovered seq %d: %d records (%d tweets, %d follows), torn=%v, generate=%v load=%v replay=%v",
		rep.Seq, rep.WALRecords, rep.Tweets, rep.Follows, rep.TornTail, rep.Generate, rep.Load, rep.Replay)

	// Reference: a fresh build of the same (pre-stream) state, fed the
	// surviving WAL records verbatim.
	w := persistWorld()
	ref := Build(w, Options{Reach: ReachStreaming, TruthComplement: true})
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var repRef RestartReport
	stats, err := st.Replay(func(r *store.Record) error { return ref.applyRecord(r, &repRef) })
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if stats.Records != rep.WALRecords {
		t.Fatalf("reference replayed %d records, recovery %d", stats.Records, rep.WALRecords)
	}

	if err := ref.RebuildReach(); err != nil {
		t.Fatal(err)
	}
	if err := sys2.RebuildReach(); err != nil {
		t.Fatal(err)
	}
	if got, want := topKDump(t, sys2, w), topKDump(t, ref, w); !bytes.Equal(got, want) {
		t.Fatal("recovered system diverges from the WAL reference")
	}
}
