package microlink_test

import (
	"fmt"

	"microlink"
)

// The examples use a tiny fixed-seed world so their output is stable.
func exampleSystem() *microlink.System {
	w := microlink.Generate(microlink.WorldParams{
		Seed: 5, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20,
	})
	return microlink.Build(w, microlink.Options{TruthComplement: true})
}

// ExampleGenerate shows that world generation is deterministic in the seed.
func ExampleGenerate() {
	a := microlink.Generate(microlink.WorldParams{Seed: 7, Users: 300, Topics: 4, EntitiesPerTopic: 8, Days: 10})
	b := microlink.Generate(microlink.WorldParams{Seed: 7, Users: 300, Topics: 4, EntitiesPerTopic: 8, Days: 10})
	fmt.Println(a.Store.Len() == b.Store.Len())
	fmt.Println(a.KB.NumEntities())
	// Output:
	// true
	// 32
}

// ExampleSystem_Describe shows the configuration banner.
func ExampleLinker_topK() {
	sys := exampleSystem()
	// Find an ambiguous surface form.
	var surface string
	sys.World.KB.EachSurface(func(form string, cs []microlink.EntityID) {
		if surface == "" && len(cs) >= 2 {
			surface = form
		}
	})
	top := sys.Linker.TopK(0, sys.World.Horizon(), surface, 2)
	fmt.Println(len(top) <= 2)
	for _, s := range top {
		if s.Score <= sys.Linker.NewEntityThreshold() {
			fmt.Println("leak")
		}
	}
	// Output:
	// true
}

// ExampleEvaluate scores a linker against generator ground truth.
func ExampleEvaluate() {
	sys := exampleSystem()
	acc := microlink.Evaluate(sys.Linker, sys.TestSet.All())
	fmt.Println(acc.Mentions > 0)
	fmt.Println(acc.MentionAccuracy() >= acc.TweetAccuracy())
	// Output:
	// true
	// true
}
