// Command linkcli is an interactive console over the linking stack:
// generate (or load the spec of) a synthetic world and explore it — link
// mentions as different users, run personalized searches, inspect burst
// events, and feed tweets back into the knowledgebase.
//
//	linkcli [-seed N] [-users N] [-spec world.json] [-save]
//
// A spec file is the JSON-encoded generator parameters; since generation
// is deterministic, the spec fully reproduces the world.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"microlink"
	"microlink/internal/cli"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	users := flag.Int("users", 800, "world size")
	spec := flag.String("spec", "", "world spec file (JSON world parameters)")
	save := flag.Bool("save", false, "write the effective spec to -spec and exit")
	export := flag.String("export", "", "write the generated tweet corpus as JSONL to this path and exit")
	flag.Parse()

	params := microlink.WorldParams{Seed: *seed, Users: *users}
	if *spec != "" && !*save {
		data, err := os.ReadFile(*spec)
		if err != nil {
			fatal("read spec: %v", err)
		}
		if err := json.Unmarshal(data, &params); err != nil {
			fatal("parse spec: %v", err)
		}
	}
	if *save {
		if *spec == "" {
			fatal("-save requires -spec")
		}
		data, err := json.MarshalIndent(params, "", "  ")
		if err != nil {
			fatal("encode spec: %v", err)
		}
		if err := os.WriteFile(*spec, data, 0o644); err != nil {
			fatal("write spec: %v", err)
		}
		fmt.Printf("spec written to %s\n", *spec)
		return
	}

	fmt.Printf("generating world (seed=%d users=%d)…\n", params.Seed, params.Users)
	start := time.Now()
	world := microlink.Generate(params)
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fatal("export: %v", err)
		}
		if err := world.Store.WriteJSONL(f); err != nil {
			fatal("export: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("export: %v", err)
		}
		fmt.Printf("corpus (%d tweets) written to %s\n", world.Store.Len(), *export)
		return
	}
	sys := microlink.Build(world, microlink.Options{})
	fmt.Printf("ready in %v — %s\n", time.Since(start).Round(time.Millisecond), sys.Describe())
	fmt.Println(`type "help" for commands`)

	cli.Run(sys, os.Stdin, os.Stdout)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "linkcli: "+format+"\n", args...)
	os.Exit(1)
}
