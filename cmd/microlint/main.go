// Command microlint runs the project's static-analysis suite
// (internal/lint) over the module containing the working directory.
//
// Usage:
//
//	microlint [-json] [-timing] [-advisory] [-only list] [-skip list] [dir]
//
// The optional dir argument selects where to start looking for go.mod
// (default "."); patterns like ./... are accepted and treated the same
// way, since microlint always analyzes the whole module. -only runs a
// comma-separated subset of the analyzers, -skip runs all but the named
// ones; the full list is printed by -h. Analyzers run on a worker pool
// (they are independent once the shared analysis state is precomputed);
// -timing switches the JSON output to a {"diagnostics", "timing"}
// object carrying per-analyzer wall time, which CI uploads as
// microlint.json. -advisory runs the non-blocking advisory lane
// (racecheck suggestion mode) instead of the suite and always exits 0
// on a loadable module. Exit status is 0 when the module is clean, 1
// when there are diagnostics, and 2 when the module fails to load or
// type-check (or the flags are invalid).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"microlink/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected, so the exit-code contract
// is unit-testable: 0 clean, 1 diagnostics, 2 load/flag failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("microlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	timing := fs.Bool("timing", false, "emit JSON {diagnostics, timing} with per-analyzer wall time (implies -json)")
	advisory := fs.Bool("advisory", false, "run the advisory lane (suggestions, never blocks) and exit 0")
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to exclude")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: microlint [-json] [-timing] [-advisory] [-only list] [-skip list] [dir]\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name(), a.Doc())
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintf(stderr, "microlint: %v\n", err)
		return 2
	}
	if *advisory {
		if *only != "" || *skip != "" {
			fmt.Fprintf(stderr, "microlint: -advisory ignores -only/-skip\n")
			return 2
		}
		analyzers = lint.AdvisoryAnalyzers()
	}

	dir := "."
	if rest := fs.Args(); len(rest) > 1 {
		fs.Usage()
		return 2
	} else if len(rest) == 1 {
		// Accept go-style patterns: microlint ./... means "this module".
		dir = strings.TrimSuffix(rest[0], "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	mod, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(stderr, "microlint: %v\n", err)
		return 2
	}
	diags, timings := lint.RunTimed(mod, analyzers, runtime.NumCPU())
	var werr error
	switch {
	case *timing:
		werr = lint.WriteJSONTimed(stdout, diags, timings)
	case *jsonOut:
		werr = lint.WriteJSON(stdout, diags)
	default:
		werr = lint.WriteText(stdout, diags)
	}
	if werr != nil {
		fmt.Fprintf(stderr, "microlint: %v\n", werr)
		return 2
	}
	if len(diags) > 0 {
		if *advisory {
			fmt.Fprintf(stderr, "microlint: %d advisory suggestion(s) (non-blocking)\n", len(diags))
			return 0
		}
		fmt.Fprintf(stderr, "microlint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only/-skip flags against the registered
// analyzer list. Unknown names are an error rather than a silent no-op:
// a typo in CI must not quietly disable a gate.
func selectAnalyzers(only, skip string) ([]lint.Analyzer, error) {
	if only != "" && skip != "" {
		return nil, fmt.Errorf("-only and -skip are mutually exclusive")
	}
	names := func(list string) (map[string]bool, error) {
		set := map[string]bool{}
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if _, ok := lint.AnalyzerByName(n); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (see microlint -h for the list)", n)
			}
			set[n] = true
		}
		return set, nil
	}
	switch {
	case only != "":
		want, err := names(only)
		if err != nil {
			return nil, err
		}
		if len(want) == 0 {
			return nil, fmt.Errorf("-only selected no analyzers")
		}
		var out []lint.Analyzer
		for _, a := range lint.Analyzers() {
			if want[a.Name()] {
				out = append(out, a)
			}
		}
		return out, nil
	case skip != "":
		drop, err := names(skip)
		if err != nil {
			return nil, err
		}
		var out []lint.Analyzer
		for _, a := range lint.Analyzers() {
			if !drop[a.Name()] {
				out = append(out, a)
			}
		}
		return out, nil
	}
	return lint.Analyzers(), nil
}
