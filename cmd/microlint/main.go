// Command microlint runs the project's static-analysis suite
// (internal/lint) over the module containing the working directory.
//
// Usage:
//
//	microlint [-json] [dir]
//
// The optional dir argument selects where to start looking for go.mod
// (default "."); patterns like ./... are accepted and treated the same
// way, since microlint always analyzes the whole module. Exit status is
// 0 when the module is clean, 1 when there are diagnostics, and 2 when
// the module fails to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microlink/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: microlint [-json] [dir]\n")
		flag.PrintDefaults()
		fmt.Fprintf(out, "\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(out, "  %-14s %s\n", a.Name(), a.Doc())
		}
	}
	flag.Parse()

	dir := "."
	if args := flag.Args(); len(args) > 1 {
		flag.Usage()
		os.Exit(2)
	} else if len(args) == 1 {
		// Accept go-style patterns: microlint ./... means "this module".
		dir = strings.TrimSuffix(args[0], "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}

	mod, err := lint.LoadModule(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "microlint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(mod, lint.Analyzers())
	var werr error
	if *jsonOut {
		werr = lint.WriteJSON(os.Stdout, diags)
	} else {
		werr = lint.WriteText(os.Stdout, diags)
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "microlint: %v\n", werr)
		os.Exit(2)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "microlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
