package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microlink/internal/lint"
)

// writeModule materialises a one-file module under t.TempDir.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	gomod := "module scratch/m\n\ngo 1.22\n"
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "m.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const cleanSrc = `package m

func Add(a, b int) int { return a + b }
`

// droppedErrSrc trips errdrop: the error result is discarded.
const droppedErrSrc = `package m

import "errors"

func fallible() error { return errors.New("x") }

func Use() { fallible() }
`

// advisorySrc has a consistently-locked unannotated field: clean for
// the blocking suite, one suggestion in the advisory lane.
const advisorySrc = `package m

import "sync"

type L struct {
	mu sync.Mutex
	n  int
}

func (l *L) Spin() {
	go func() { l.mu.Lock(); l.n++; l.mu.Unlock() }()
	go func() { l.mu.Lock(); _ = l.n; l.mu.Unlock() }()
}
`

// TestUsageListsAllAnalyzers pins the -h contract: the suite is exactly
// twelve analyzers and every registered name appears in the usage
// roster. Adding or removing an analyzer must update this count (and
// the README/DESIGN docs) deliberately.
func TestUsageListsAllAnalyzers(t *testing.T) {
	const wantCount = 12
	if got := len(lint.Analyzers()); got != wantCount {
		t.Fatalf("lint.Analyzers() has %d analyzers, want %d", got, wantCount)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 2 {
		t.Fatalf("-h exit %d, want 2", code)
	}
	usage := stderr.String()
	_, roster, found := strings.Cut(usage, "analyzers:")
	if !found {
		t.Fatalf("usage output missing the analyzers roster:\n%s", usage)
	}
	listed := 0
	for _, line := range strings.Split(roster, "\n") {
		if strings.TrimSpace(line) != "" {
			listed++
		}
	}
	if listed != wantCount {
		t.Fatalf("usage lists %d analyzers, want %d:\n%s", listed, wantCount, roster)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(roster, a.Name()) {
			t.Fatalf("usage roster missing analyzer %q:\n%s", a.Name(), roster)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all := lint.Analyzers()

	t.Run("default is everything", func(t *testing.T) {
		got, err := selectAnalyzers("", "")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(all) {
			t.Fatalf("got %d analyzers, want %d", len(got), len(all))
		}
	})

	t.Run("only picks the named subset", func(t *testing.T) {
		got, err := selectAnalyzers("errdrop, lockcheck", "")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("got %d analyzers, want 2: %v", len(got), got)
		}
		names := map[string]bool{}
		for _, a := range got {
			names[a.Name()] = true
		}
		if !names["errdrop"] || !names["lockcheck"] {
			t.Fatalf("wrong subset: %v", names)
		}
	})

	t.Run("skip drops the named subset", func(t *testing.T) {
		got, err := selectAnalyzers("", "errdrop")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(all)-1 {
			t.Fatalf("got %d analyzers, want %d", len(got), len(all)-1)
		}
		for _, a := range got {
			if a.Name() == "errdrop" {
				t.Fatal("errdrop should have been skipped")
			}
		}
	})

	t.Run("unknown name errors", func(t *testing.T) {
		if _, err := selectAnalyzers("nosuch", ""); err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
			t.Fatalf("err = %v, want unknown analyzer", err)
		}
	})

	t.Run("only and skip are exclusive", func(t *testing.T) {
		if _, err := selectAnalyzers("errdrop", "lockcheck"); err == nil {
			t.Fatal("expected an error for -only with -skip")
		}
	})

	t.Run("empty only selects nothing and errors", func(t *testing.T) {
		if _, err := selectAnalyzers(" , ", ""); err == nil {
			t.Fatal("expected an error for an empty -only selection")
		}
	})
}

func TestExitCodes(t *testing.T) {
	runIn := func(args ...string) (int, string, string) {
		var stdout, stderr bytes.Buffer
		code := run(args, &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}

	t.Run("clean module exits 0", func(t *testing.T) {
		dir := writeModule(t, cleanSrc)
		code, _, stderr := runIn(dir)
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr: %s", code, stderr)
		}
	})

	t.Run("diagnostics exit 1", func(t *testing.T) {
		dir := writeModule(t, droppedErrSrc)
		code, stdout, _ := runIn(dir)
		if code != 1 {
			t.Fatalf("exit %d, want 1; stdout: %s", code, stdout)
		}
		if !strings.Contains(stdout, "errdrop") {
			t.Fatalf("stdout missing errdrop diagnostic: %s", stdout)
		}
	})

	t.Run("only filters the seeded bug away", func(t *testing.T) {
		dir := writeModule(t, droppedErrSrc)
		code, _, stderr := runIn("-only", "lockcheck", dir)
		if code != 0 {
			t.Fatalf("exit %d, want 0 with -only lockcheck; stderr: %s", code, stderr)
		}
		code, stdout, _ := runIn("-only", "errdrop", dir)
		if code != 1 {
			t.Fatalf("exit %d, want 1 with -only errdrop; stdout: %s", code, stdout)
		}
	})

	t.Run("skip drops the seeded bug", func(t *testing.T) {
		dir := writeModule(t, droppedErrSrc)
		code, _, stderr := runIn("-skip", "errdrop", dir)
		if code != 0 {
			t.Fatalf("exit %d, want 0 with -skip errdrop; stderr: %s", code, stderr)
		}
	})

	t.Run("broken module exits 2", func(t *testing.T) {
		dir := writeModule(t, "package m\n\nfunc broken( {\n")
		code, _, _ := runIn(dir)
		if code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
	})

	t.Run("unknown analyzer exits 2", func(t *testing.T) {
		dir := writeModule(t, cleanSrc)
		code, _, stderr := runIn("-only", "nosuch", dir)
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
		}
	})

	t.Run("json output stays parseable", func(t *testing.T) {
		dir := writeModule(t, droppedErrSrc)
		code, stdout, _ := runIn("-json", dir)
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		if !strings.HasPrefix(strings.TrimSpace(stdout), "[") {
			t.Fatalf("json output does not start with [: %s", stdout)
		}
	})

	t.Run("extra args exit 2", func(t *testing.T) {
		code, _, _ := runIn("a", "b")
		if code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
	})

	t.Run("timing emits the diagnostics+timing object", func(t *testing.T) {
		dir := writeModule(t, droppedErrSrc)
		code, stdout, _ := runIn("-timing", dir)
		if code != 1 {
			t.Fatalf("exit %d, want 1", code)
		}
		var rep struct {
			Diagnostics []struct {
				Analyzer string `json:"analyzer"`
			} `json:"diagnostics"`
			Timing []struct {
				Analyzer string  `json:"analyzer"`
				Millis   float64 `json:"ms"`
			} `json:"timing"`
		}
		if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
			t.Fatalf("timing output is not valid JSON: %v\n%s", err, stdout)
		}
		if len(rep.Diagnostics) == 0 || rep.Diagnostics[0].Analyzer != "errdrop" {
			t.Fatalf("timing output missing the errdrop diagnostic: %s", stdout)
		}
		if len(rep.Timing) != len(lint.Analyzers()) {
			t.Fatalf("timing table has %d rows, want %d: %s", len(rep.Timing), len(lint.Analyzers()), stdout)
		}
		for _, row := range rep.Timing {
			if row.Millis < 0 {
				t.Fatalf("negative wall time for %s: %s", row.Analyzer, stdout)
			}
		}
	})

	t.Run("advisory never blocks", func(t *testing.T) {
		dir := writeModule(t, advisorySrc)
		code, _, stderr := runIn(dir)
		if code != 0 {
			t.Fatalf("blocking run exit %d, want 0 (field is consistently locked); stderr: %s", code, stderr)
		}
		code, stdout, stderr := runIn("-advisory", dir)
		if code != 0 {
			t.Fatalf("advisory run exit %d, want 0; stderr: %s", code, stderr)
		}
		if !strings.Contains(stdout, "guarded-by") {
			t.Fatalf("advisory run missing the guarded-by suggestion: %s", stdout)
		}
	})

	t.Run("advisory rejects only/skip", func(t *testing.T) {
		dir := writeModule(t, cleanSrc)
		code, _, _ := runIn("-advisory", "-only", "errdrop", dir)
		if code != 2 {
			t.Fatalf("exit %d, want 2", code)
		}
	})
}
