package main

import "testing"

func TestValidateFlags(t *testing.T) {
	for _, users := range []int{1, 800, 1500} {
		if err := validateFlags(users); err != nil {
			t.Errorf("validateFlags(%d) = %v, want nil", users, err)
		}
	}
	for _, users := range []int{0, -1, -1500} {
		if err := validateFlags(users); err == nil {
			t.Errorf("validateFlags(%d) accepted a world no experiment can run against", users)
		}
	}
}
