// Command linkbench regenerates the paper's tables and figures over
// synthetic worlds and prints them in the same rows/series the paper
// reports. Run `linkbench all` for the full evaluation or a single
// experiment id (fig4a … fig6d, table4, table5, categories). The extra
// `stages` experiment prints the live per-stage latency breakdown of the
// Eq. 1 pipeline from the system's metrics registry; `batch` compares the
// serial single-mention path against the concurrent LinkBatch pipeline;
// `firehose` drives a synthetic event stream through the ingest pipeline
// while query workers run against the copy-on-swap reach arena;
// `restart` snapshots a streaming system mid-firehose, reopens it from
// the data directory, and reports the cold-start breakdown (segment load
// vs WAL replay) with a byte-identity check on the restored answers;
// -cpuprofile and -memprofile capture pprof profiles of any run (see
// `make profile`).
//
// Usage:
//
//	linkbench [-seed N] [-users N] [-quick] [-cpuprofile F] [-memprofile F] <experiment|all>
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"microlink"
	"microlink/internal/experiments"
)

var (
	seed         = flag.Int64("seed", 42, "world generator seed")
	users        = flag.Int("users", 1500, "number of users in the accuracy world")
	quick        = flag.Bool("quick", false, "smaller scales for the efficiency experiments")
	out          = flag.String("out", "", "also write the experiment's JSON result to this file (index, firehose)")
	workersSweep = flag.String("workers-sweep", "", "index: comma-separated worker counts to sweep (one JSON record each), or 'auto' for 1,2,4 on multi-core machines")
	maxWaitFrac  = flag.Float64("max-wait-frac", 0, "index: fail if (merge+barrier wait)/parallel build exceeds this fraction on any multi-worker record (0 disables)")
	cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile   = flag.String("memprofile", "", "write a heap profile to this file")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: linkbench [-seed N] [-users N] [-quick] [-cpuprofile F] [-memprofile F] <experiment|all>")
		fmt.Fprintln(os.Stderr, "experiments: fig4a fig4b fig4c fig4d table4 fig5a fig5b fig5c fig5d table5 fig6ab fig6c fig6d categories stages batch index firehose restart")
		os.Exit(2)
	}
	id := flag.Arg(0)

	if err := validateFlags(*users); err != nil {
		fmt.Fprintf(os.Stderr, "linkbench: %v\n", err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "linkbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "linkbench: closing CPU profile: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "linkbench: CPU profile written to %s\n", *cpuprofile)
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "linkbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "linkbench: %v\n", err)
				return
			}
			fmt.Fprintf(os.Stderr, "linkbench: heap profile written to %s\n", *memprofile)
		}()
	}

	runners := map[string]func(){
		"fig4a":      fig4a,
		"fig4b":      fig4b,
		"fig4c":      fig4c,
		"fig4d":      fig4d,
		"table4":     table4,
		"fig5a":      fig5a,
		"fig5b":      fig5b,
		"fig5c":      fig5c,
		"fig5d":      fig5d,
		"table5":     table5,
		"fig6ab":     fig6ab,
		"fig6c":      fig6c,
		"fig6d":      fig6d,
		"categories": categories,
		"taxonomy":   taxonomy,
		"stages":     stages,
		"batch":      batch,
		"index":      index,
		"firehose":   firehose,
		"restart":    restart,
	}
	if id == "all" {
		ids := make([]string, 0, len(runners))
		for k := range runners {
			ids = append(ids, k)
		}
		sort.Strings(ids)
		for _, k := range ids {
			runners[k]()
			fmt.Println()
		}
		return
	}
	run, ok := runners[id]
	if !ok {
		fmt.Fprintf(os.Stderr, "linkbench: unknown experiment %q\n", id)
		os.Exit(2)
	}
	run()
}

// validateFlags rejects world sizes no experiment can run against: a
// non-positive -users would generate an empty world and benchmark
// nothing (found while writing the wgcheck corpus — a zero-size pool is
// the same bug class).
func validateFlags(users int) error {
	if users <= 0 {
		return fmt.Errorf("-users must be positive, got %d", users)
	}
	return nil
}

var cachedWorld *microlink.World

func world() *microlink.World {
	if cachedWorld == nil {
		p := experiments.DefaultWorldParams()
		p.Seed = *seed
		p.Users = *users
		banner("generating world (seed=%d users=%d)", p.Seed, p.Users)
		start := time.Now()
		cachedWorld = microlink.Generate(p)
		st := cachedWorld.Store.Stats()
		fmt.Printf("  %d users, %d entities, %d tweets, %d mentions (%.2f/tweet) [%v]\n",
			cachedWorld.Graph.NumNodes(), cachedWorld.KB.NumEntities(),
			st.Tweets, st.Mentions, st.MentionsPerTweet, time.Since(start).Round(time.Millisecond))
	}
	return cachedWorld
}

func banner(format string, args ...any) {
	fmt.Printf("── "+format+"\n", args...)
}

func printAccuracy(rows []experiments.AccuracyRow) {
	fmt.Printf("  %-24s %10s %10s\n", "method", "mention", "tweet")
	for _, r := range rows {
		fmt.Printf("  %-24s %10.4f %10.4f\n", r.Label, r.Mention, r.Tweet)
	}
}

func printTiming(rows []experiments.TimingRow) {
	fmt.Printf("  %-24s %14s %14s\n", "method", "per mention", "per tweet")
	for _, r := range rows {
		fmt.Printf("  %-24s %14v %14v\n", r.Label, r.PerMention, r.PerTweet)
	}
}

func fig4a() {
	banner("Fig 4(a): accuracy vs state of the art (inactive-user test set)")
	printAccuracy(experiments.Fig4a(world()))
}

func fig4b() {
	banner("Fig 4(b): accuracy vs complementation corpus Dθ")
	printAccuracy(experiments.Fig4b(world(), []int{90, 70, 50, 30, 10}))
}

func fig4c() {
	banner("Fig 4(c): tf-idf vs entropy influence estimation")
	printAccuracy(experiments.Fig4c(world()))
}

func fig4d() {
	banner("Fig 4(d): recency propagation ablation")
	printAccuracy(experiments.Fig4d(world()))
}

func table4() {
	banner("Table 4: feature ablation (Eq. 1)")
	printAccuracy(experiments.Table4(world()))
}

func fig5a() {
	banner("Fig 5(a): linking time vs state of the art")
	printTiming(experiments.Fig5a(world()))
}

func fig5b() {
	banner("Fig 5(b): naive vs incremental transitive-closure construction")
	scales := experiments.DefaultScales()
	if *quick {
		scales = scales[:3]
	}
	fmt.Printf("  %-8s %10s %16s %16s\n", "dataset", "users", "naive (extrap)", "incremental")
	for _, r := range experiments.Fig5b(scales, 4) {
		fmt.Printf("  %-8s %10d %16v %16v\n", r.Label, r.Users, r.Naive.Round(time.Millisecond), r.Incremental.Round(time.Millisecond))
	}
}

func fig5c() {
	banner("Fig 5(c): linking time vs number of influential users")
	printTiming(experiments.Fig5c(world(), []int{1, 5, 10, 20, 50, 0}))
}

func fig5d() {
	banner("Fig 5(d): linking time vs knowledgebase complement size")
	printTiming(experiments.Fig5d(world(), []int{90, 70, 50, 30, 10}))
}

func table5() {
	banner("Table 5: reachability index comparison (transitive closure vs 2-hop)")
	scales := experiments.DefaultScales()
	nq := 1_000_000
	if *quick {
		scales = scales[:4]
		nq = 100_000
	}
	fmt.Printf("  %-8s %9s %9s %7s %7s | %11s %11s | %9s %9s | %11s %11s\n",
		"dataset", "#node", "#edge", "avgdeg", "maxdeg",
		"tc build", "2hop build", "tc size", "2hop size", "tc query", "2hop query")
	for _, r := range experiments.Table5(scales, 4, nq) {
		tcB, tcS, tcQ := "-", "-", "-"
		if r.ClosureBuild > 0 {
			tcB = r.ClosureBuild.Round(time.Millisecond).String()
			tcS = mb(r.ClosureBytes)
			tcQ = r.ClosureQuery.String()
		}
		fmt.Printf("  %-8s %9d %9d %7.1f %7d | %11s %11s | %9s %9s | %11s %11s\n",
			r.Label, r.Nodes, r.Edges, r.AvgDegree, r.MaxDegree,
			tcB, r.TwoHopBuild.Round(time.Millisecond),
			tcS, mb(r.TwoHopBytes),
			tcQ, r.TwoHopQuery)
	}
}

func mb(b int64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}

func fig6ab() {
	banner("Fig 6(a,b): generalisability on the Weibo-flavoured corpus")
	p := experiments.WeiboWorldParams()
	fmt.Printf("  generating Weibo world (seed=%d)…\n", p.Seed)
	w := microlink.Generate(p)
	acc, tim := experiments.Fig6ab(w)
	printAccuracy(acc)
	printTiming(tim)
}

func fig6c() {
	banner("Fig 6(c): accuracy vs tweet length (mentions per tweet)")
	const maxLen = 4
	byMethod := experiments.Fig6c(world(), maxLen)
	fmt.Printf("  %-24s", "method")
	for l := 1; l <= maxLen; l++ {
		fmt.Printf(" %8s", fmt.Sprintf("len=%d", l))
	}
	fmt.Println()
	for _, m := range []string{"on-the-fly", "collective", "ours"} {
		fmt.Printf("  %-24s", m)
		for _, a := range byMethod[m] {
			fmt.Printf(" %8.4f", a.MentionAccuracy())
		}
		fmt.Println()
	}
}

func fig6d() {
	banner("Fig 6(d): sensitivity to α, β, γ")
	pts := experiments.Fig6d(world(), []float64{0.1, 0.3, 0.6, 0.9}, 4)
	fmt.Printf("  %6s %6s %6s %10s\n", "α", "β", "γ", "mention")
	for _, p := range pts {
		fmt.Printf("  %6.2f %6.2f %6.2f %10.4f\n", p.Alpha, p.Beta, p.Gamma, p.Mention)
	}
}

func taxonomy() {
	banner("§2 taxonomy: reachability substrates on one graph")
	users, nq := 2000, 20000
	if *quick {
		users, nq = 800, 5000
	}
	fmt.Printf("  %-24s %12s %10s %12s\n", "substrate", "build", "size", "query")
	for _, r := range experiments.Taxonomy(users, 4, nq) {
		fmt.Printf("  %-24s %12v %10s %12v\n",
			r.Substrate, r.Build.Round(time.Millisecond), mb(r.Bytes), r.Query)
	}
}

// stages links the whole inactive-user test set and prints the per-stage
// latency breakdown of the Eq. 1 pipeline from the system's metrics
// registry — the online view of the offline Fig 5 efficiency study.
func stages() {
	banner("per-stage latency breakdown (Eq. 1 pipeline, metrics registry)")
	sys := microlink.Build(world(), microlink.Options{})
	start := time.Now()
	mentions := 0
	for _, tw := range sys.TestSet.All() {
		tweet := tw
		sys.Linker.LinkTweet(&tweet)
		mentions += len(tw.Mentions)
	}
	fmt.Printf("  linked %d tweets / %d mentions in %v\n",
		sys.TestSet.Len(), mentions, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %-12s %8s %12s %12s %12s %12s\n", "stage", "count", "mean", "p50", "p95", "p99")
	snaps := sys.Linker.StageStats()
	for _, stage := range []string{"candidate", "popularity", "recency", "interest"} {
		s := snaps[stage]
		fmt.Printf("  %-12s %8d %12v %12v %12v %12v\n", stage, s.Count,
			secs(s.Mean()), secs(s.Quantile(0.50)), secs(s.Quantile(0.95)), secs(s.Quantile(0.99)))
	}
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Nanosecond)
}

// batch compares the serial single-mention path against the concurrent
// batch pipeline over the inactive-user test set in serving mode (now =
// world horizon, the HTTP API default). Each side runs on its own freshly
// built system so neither inherits the other's warm caches; the batch
// side reports its interest-cache hit rate.
func batch() {
	banner("batch pipeline: serial ScoreCandidates vs concurrent LinkBatch")
	w := world()

	var queries []microlink.MentionQuery
	serialSys := microlink.Build(w, microlink.Options{})
	now := w.Horizon()
	for _, tw := range serialSys.TestSet.All() {
		for _, m := range tw.Mentions {
			queries = append(queries, microlink.MentionQuery{User: tw.User, Now: now, Surface: m.Surface})
		}
	}

	start := time.Now()
	linked := 0
	for _, q := range queries {
		if scored := serialSys.Linker.ScoreCandidates(q.User, q.Now, q.Surface); len(scored) > 0 {
			linked++
		}
	}
	serialDur := time.Since(start)

	batchSys := microlink.Build(w, microlink.Options{})
	start = time.Now()
	results := batchSys.Linker.LinkBatch(context.Background(), queries)
	batchDur := time.Since(start)

	batchLinked := 0
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("  batch error: %v\n", r.Err)
			return
		}
		if len(r.Scored) > 0 {
			batchLinked++
		}
	}
	if batchLinked != linked {
		fmt.Printf("  WARNING: serial linked %d, batch linked %d\n", linked, batchLinked)
	}

	rate := func(d time.Duration) float64 { return float64(len(queries)) / d.Seconds() }
	hits, misses := batchSys.Linker.CacheStats()
	fmt.Printf("  %-10s %8d queries %12v %12.0f mentions/sec\n", "serial", len(queries), serialDur.Round(time.Millisecond), rate(serialDur))
	fmt.Printf("  %-10s %8d queries %12v %12.0f mentions/sec\n", "batch", len(queries), batchDur.Round(time.Millisecond), rate(batchDur))
	fmt.Printf("  speedup %.2fx   interest cache %d hits / %d misses\n", serialDur.Seconds()/batchDur.Seconds(), hits, misses)
}

// index measures the reach construction engine: serial vs
// partitioned-parallel 2-hop build with a per-stage split, the parallel
// index-size delta, and steady-state query allocations. With -out the
// JSON result is also written to a file (`make bench-index` checks it in
// as BENCH_reach.json). -workers-sweep repeats the parallel build per
// worker count (each under a matching GOMAXPROCS) and emits a JSON array;
// -max-wait-frac turns the merge+barrier share of the build into a gate
// so the old serialized merge cannot silently come back.
func index() {
	banner("2-hop index build: serial vs parallel construction")
	opts := experiments.IndexBenchOptions{Users: 4000}
	if *quick {
		opts.Users = 1000
	}
	counts, err := sweepCounts(*workersSweep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkbench: %v\n", err)
		os.Exit(2)
	}
	var results []experiments.IndexBenchResult
	if len(counts) > 0 {
		results = experiments.IndexBenchSweep(opts, counts)
	} else {
		results = []experiments.IndexBenchResult{experiments.IndexBench(opts)}
	}
	r0 := results[0]
	fmt.Printf("  graph: %d users, %d edges, H=%d (num_cpu=%d)\n", r0.Users, r0.Edges, r0.MaxHops, r0.NumCPU)
	fmt.Printf("  serial build %v, %s, %d labels\n",
		(time.Duration(r0.SerialMS) * time.Millisecond).String(), mb(r0.SerialBytes), r0.SerialLabels)
	for _, r := range results {
		printIndexRecord(r)
	}
	r := results[len(results)-1]
	fmt.Printf("  fol pool: %d ids for %d refs (%.1f%% interned away)\n",
		r.FolPoolEntries, r.FolRefs, 100*(1-float64(r.FolPoolEntries)/float64(r.FolRefs)))
	fmt.Printf("  query: %dns/op, %.2f allocs/op\n", r.QueryNS, r.QueryAllocsOp)
	if len(counts) > 0 {
		writeJSON(results)
	} else {
		writeJSON(r0)
	}
	if *maxWaitFrac > 0 {
		for _, r := range results {
			if r.Workers <= 1 || r.ParallelMS <= 0 {
				continue
			}
			if frac := float64(r.MergeWaitMS) / float64(r.ParallelMS); frac > *maxWaitFrac {
				fmt.Fprintf(os.Stderr,
					"linkbench: merge+barrier wait is %.0f%% of the workers=%d build, above the %.0f%% gate — the merge barrier is back\n",
					100*frac, r.Workers, 100**maxWaitFrac)
				os.Exit(1)
			}
		}
		fmt.Printf("  merge-wait gate: all multi-worker records under %.0f%% of build time\n", 100**maxWaitFrac)
	}
}

func printIndexRecord(r experiments.IndexBenchResult) {
	fmt.Printf("  workers=%d gomaxprocs=%d: build %v, speedup %.2fx, size ratio %.3f (batch=%d, %d partitions)\n",
		r.Workers, r.GOMAXPROCS, (time.Duration(r.ParallelMS) * time.Millisecond).String(),
		r.Speedup, r.SizeRatio, r.BatchSize, r.MergePartitions)
	fmt.Printf("    stages: bfs %v, merge %v, barrier wait %v, freeze %v\n",
		time.Duration(r.ParallelBFSMS)*time.Millisecond,
		time.Duration(r.ParallelMergeMS)*time.Millisecond,
		time.Duration(r.ParallelBarrierMS)*time.Millisecond,
		time.Duration(r.ParallelFreezeMS)*time.Millisecond)
	if len(r.MergeUtilization) > 0 {
		fmt.Printf("    merge workers busy:")
		for _, u := range r.MergeUtilization {
			fmt.Printf(" %.0f%%", 100*u)
		}
		fmt.Println()
	}
}

// sweepCounts parses -workers-sweep: "" disables the sweep, "auto"
// selects 1,2,4 on multi-core machines (and disables the sweep on a
// single-CPU box, where extra workers only measure scheduler noise),
// anything else is a comma-separated list of worker counts.
func sweepCounts(spec string) ([]int, error) {
	switch spec {
	case "":
		return nil, nil
	case "auto":
		if runtime.NumCPU() > 1 {
			return []int{1, 2, 4}, nil
		}
		return nil, nil
	}
	var counts []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-workers-sweep: bad worker count %q", f)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// firehose drives the streaming ingest pipeline (DESIGN.md §7): a
// synthetic tweet+follow stream through System.StartIngest with query
// workers hammering the frozen reach arena and copy-on-swap rebuilds
// landing mid-stream. With -out the JSON result is also written to a
// file.
func firehose() {
	banner("streaming ingest firehose: sustained throughput + copy-on-swap rebuilds")
	opts := experiments.FirehoseOptions{}
	if *quick {
		opts.World = microlink.WorldParams{Seed: *seed, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20}
		opts.Events = 1500
	}
	r := experiments.Firehose(opts)
	fmt.Printf("  world: %d users; stream: %d events (%d tweets, %d follows)\n",
		r.Users, r.Events, r.TweetEvents, r.FollowEvents)
	fmt.Printf("  ingested in %v (%.0f events/sec), %d dropped\n",
		(time.Duration(r.DurationMS) * time.Millisecond).String(), r.EventsPerSec, r.Dropped)
	fmt.Printf("  %d edges inserted; %d rebuilds, %d swaps; staleness peak %d, final %d; queue peak %d\n",
		r.InsertedEdges, r.Rebuilds, r.Swaps, r.PeakStaleness, r.FinalStaleness, r.PeakQueueDepth)
	fmt.Printf("  queries during ingest: %d (%d errors), p50 %dµs, p99 %dµs\n",
		r.Queries, r.QueryErrors, r.QueryP50US, r.QueryP99US)
	writeJSON(r)
}

func restart() {
	banner("durable snapshot + WAL warm restart: cold-start breakdown")
	opts := experiments.RestartOptions{}
	if *quick {
		opts.World = microlink.WorldParams{Seed: *seed, Users: 400, Topics: 6, EntitiesPerTopic: 10, Days: 20}
		opts.Events = 1500
	}
	r, err := experiments.Restart(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkbench: restart: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  world: %d users; stream: %d events; snapshot seq %d committed in %dms\n",
		r.Users, r.Events, r.SnapshotSeq, r.SnapshotMS)
	fmt.Printf("  cold start %dms = generate %dms + segment load %dms + WAL replay %dms (fresh build: %dms)\n",
		r.ColdStartMS, r.GenerateMS, r.LoadMS, r.ReplayMS, r.FreshBuildMS)
	fmt.Printf("  replayed %d records / %d bytes (%d tweets, %d follows), torn tail: %v\n",
		r.WALRecords, r.WALBytes, r.ReplayedTweets, r.ReplayedFollows, r.TornTail)
	fmt.Printf("  top-k parity over %d probes: identical=%v\n", r.Probes, r.Identical)
	if !r.Identical {
		fmt.Fprintln(os.Stderr, "linkbench: restart: restored answers diverge")
		os.Exit(1)
	}
	writeJSON(r)
}

// writeJSON honours -out for the experiments with machine-readable
// results (index, firehose, restart).
func writeJSON(r any) {
	if *out == "" {
		return
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "linkbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "linkbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "linkbench: result written to %s\n", *out)
}

func categories() {
	banner("Appendix C.1: accuracy per entity category")
	fmt.Printf("  %-14s %8s %10s\n", "category", "share", "mention")
	for _, r := range experiments.Categories(world()) {
		fmt.Printf("  %-14s %7.1f%% %10.4f\n", r.Category, 100*r.Share, r.Mention)
	}
}
