package main

import (
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := func() (int, int, time.Duration, time.Duration, time.Duration, time.Duration, time.Duration) {
		return 800, 0, 10 * time.Second, 30 * time.Second, 2 * time.Minute, 0, 5 * time.Second
	}

	users, workers, rt, wt, it, qt, sg := ok()
	if err := validateFlags(users, workers, rt, wt, it, qt, sg); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if err := validateFlags(1, 4, time.Second, time.Second, time.Second, time.Second, time.Second); err != nil {
		t.Fatalf("explicit positive values rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(users, workers *int, rt, wt, it, qt, sg *time.Duration)
	}{
		{"zero users", func(u, w *int, rt, wt, it, qt, sg *time.Duration) { *u = 0 }},
		{"negative users", func(u, w *int, rt, wt, it, qt, sg *time.Duration) { *u = -5 }},
		{"negative workers", func(u, w *int, rt, wt, it, qt, sg *time.Duration) { *w = -1 }},
		{"zero read timeout", func(u, w *int, rt, wt, it, qt, sg *time.Duration) { *rt = 0 }},
		{"negative write timeout", func(u, w *int, rt, wt, it, qt, sg *time.Duration) { *wt = -time.Second }},
		{"zero idle timeout", func(u, w *int, rt, wt, it, qt, sg *time.Duration) { *it = 0 }},
		{"negative request timeout", func(u, w *int, rt, wt, it, qt, sg *time.Duration) { *qt = -time.Second }},
		{"zero shutdown grace", func(u, w *int, rt, wt, it, qt, sg *time.Duration) { *sg = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			users, workers, rt, wt, it, qt, sg := ok()
			tc.mutate(&users, &workers, &rt, &wt, &it, &qt, &sg)
			if err := validateFlags(users, workers, rt, wt, it, qt, sg); err == nil {
				t.Fatal("invalid configuration accepted")
			}
		})
	}
}
