// Command linkd serves the online-inference module (§3.2.2) over HTTP:
//
//	linkd [-addr :8080] [-seed 1] [-users 800] [-data DIR] [-pprof] [-request-timeout 30s]
//
// Endpoints:
//
//	GET  /healthz
//	GET  /v1/link?user=U&mention=M[&now=T]      score all candidates
//	POST /v1/link/batch                         score up to 256 mention queries concurrently
//	GET  /v1/topk?user=U&mention=M&k=K[&now=T]  top-k above the β+γ threshold
//	GET  /v1/search?user=U&q=QUERY&k=K          personalized microblog search
//	POST /v1/tweet                              NER + link (+feedback) a raw tweet
//	POST /v1/confirm                            interactive feedback: confirm a link
//	POST /v1/ingest/tweet                       enqueue a tweet on the firehose pipeline (-ingest)
//	POST /v1/ingest/follow                      enqueue a follow edge on the firehose pipeline (-ingest)
//	GET  /v1/stats
//	POST /v1/admin/snapshot                     commit a durable snapshot to the -data directory
//	GET  /v1/admin/status                       persistence + ingest freshness (staleness, swaps, WAL)
//	GET  /metrics                               Prometheus text exposition
//	GET  /debug/pprof/*                         live profiling (opt-in via -pprof)
//
// With -data DIR the server is durable: boot warm-restarts from the
// directory's snapshot + WAL when one exists (the manifest's world and
// reach parameters override -seed/-users/-reach) and commits an initial
// snapshot otherwise; applied firehose events tee into the WAL, and
// kill -9 loses at most the events not yet applied. -index-file remains
// as a deprecated alias persisting the reachability index alone.
//
// Errors use the structured envelope documented in internal/httpapi. The
// -request-timeout flag bounds each request with a context deadline that
// the scoring pipeline observes, so slow queries return a
// deadline_exceeded envelope instead of holding a connection; SIGINT or
// SIGTERM drains in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"microlink"
	"microlink/internal/httpapi"
	"microlink/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "world seed")
	users := flag.Int("users", 800, "world size")
	reachKind := flag.String("reach", "closure", "reachability substrate: closure|twohop|naive|streaming")
	ingestOn := flag.Bool("ingest", false, "attach the streaming firehose pipeline (requires -reach streaming)")
	ingestQueue := flag.Int("ingest-queue", 0, "ingest queue capacity (0 selects the default)")
	rebuildAfter := flag.Int("rebuild-after", 0, "rebuild the frozen reach arena after this many new follow edges (0 selects the default)")
	rebuildEvery := flag.Duration("rebuild-interval", 0, "additionally rebuild on this interval when stale (0 disables)")
	dataDir := flag.String("data", "", "data directory for durable snapshots + WAL; warm-restarts from it when it holds a snapshot")
	fsyncOn := flag.Bool("fsync", false, "fsync the WAL on every append (durable against power loss, slower)")
	indexFile := flag.String("index-file", "", "persist/reload the reachability index at this path (deprecated: use -data)")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/* (CPU, heap, goroutine profiles)")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "max time to read a request")
	writeTimeout := flag.Duration("write-timeout", 30*time.Second, "max time to write a response")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request context deadline observed by the scoring pipeline (0 disables)")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	workers := flag.Int("workers", 0, "LinkBatch worker pool size (0 selects GOMAXPROCS)")
	flag.Parse()

	if err := validateFlags(*users, *workers, *readTimeout, *writeTimeout, *idleTimeout, *reqTimeout, *shutdownGrace); err != nil {
		log.Fatalf("linkd: %v", err)
	}
	if err := validateIngestFlags(*ingestQueue, *rebuildEvery); err != nil {
		log.Fatalf("linkd: %v", err)
	}

	opts := microlink.Options{}
	opts.Batch.Workers = *workers
	opts.Fsync = *fsyncOn
	switch *reachKind {
	case "closure":
		opts.Reach = microlink.ReachClosure
	case "twohop":
		opts.Reach = microlink.ReachTwoHop
	case "naive":
		opts.Reach = microlink.ReachNaive
	case "streaming":
		opts.Reach = microlink.ReachStreaming
	default:
		log.Fatalf("linkd: unknown -reach %q", *reachKind)
	}
	if *ingestOn && opts.Reach != microlink.ReachStreaming {
		log.Fatalf("linkd: -ingest requires -reach streaming, got %q", *reachKind)
	}

	// Warm restart: when -data holds a committed snapshot, the whole
	// system — graph, complemented KB, live tweets, frozen reach arena —
	// reloads from segments and the WAL suffix replays on top. The
	// manifest's world and reach parameters win over -seed/-users/-reach.
	var sys *microlink.System
	if *dataDir != "" {
		s, rep, err := microlink.Open(*dataDir, opts)
		switch {
		case err == nil:
			sys = s
			log.Printf("linkd: warm restart from %s: snapshot seq %d, generate %v + segment load %v + WAL replay %v (%d records, torn tail: %v)",
				*dataDir, rep.Seq, rep.Generate.Round(time.Millisecond), rep.Load.Round(time.Millisecond),
				rep.Replay.Round(time.Millisecond), rep.WALRecords, rep.TornTail)
		case errors.Is(err, microlink.ErrNoSnapshot):
			log.Printf("linkd: %s holds no snapshot; cold start", *dataDir)
		default:
			log.Fatalf("linkd: open %s: %v", *dataDir, err)
		}
	}
	if sys == nil {
		log.Printf("linkd: generating world (seed=%d users=%d)…", *seed, *users)
		world := microlink.Generate(microlink.WorldParams{Seed: *seed, Users: *users})
		if *indexFile != "" {
			if idx, err := microlink.LoadReachIndex(*indexFile, world.Graph, opts.Reach); err == nil {
				opts.PrebuiltReach = idx
				log.Printf("linkd: loaded reachability index from %s", *indexFile)
			} else {
				log.Printf("linkd: no reusable index (%v); building fresh", err)
			}
		}
		log.Printf("linkd: building linking stack…")
		sys = microlink.Build(world, opts)
		if *indexFile != "" && opts.PrebuiltReach == nil {
			if err := microlink.SaveReachIndex(*indexFile, sys.Reach); err != nil {
				log.Printf("linkd: save index: %v", err)
			} else {
				log.Printf("linkd: saved reachability index to %s", *indexFile)
			}
		}
		if *dataDir != "" {
			info, err := sys.Snapshot(*dataDir)
			if err != nil {
				log.Fatalf("linkd: initial snapshot: %v", err)
			}
			log.Printf("linkd: initial snapshot seq %d committed to %s in %v",
				info.Seq, *dataDir, info.Elapsed.Round(time.Millisecond))
		}
	}
	log.Print("linkd: ", sys.Describe())

	var pipe *microlink.IngestPipeline
	if *ingestOn {
		p, err := sys.StartIngest(microlink.IngestConfig{
			Queue:             *ingestQueue,
			RebuildAfterEdges: *rebuildAfter,
			RebuildInterval:   *rebuildEvery,
		})
		if err != nil {
			log.Fatalf("linkd: start ingest: %v", err)
		}
		pipe = p
		log.Print("linkd: firehose ingest pipeline attached (/v1/ingest/*)")
	}

	// Runtime health gauges (goroutines, heap, GC) sampled into /metrics.
	collector := obs.CollectRuntime(sys.Metrics, "microlink", 10*time.Second)

	root := http.NewServeMux()
	root.Handle("/", httpapi.New(sys))
	if *pprofOn {
		root.HandleFunc("GET /debug/pprof/", pprof.Index)
		root.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		root.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		log.Print("linkd: pprof enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           withRequestTimeout(*reqTimeout, root),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-done
		log.Print("linkd: shutting down…")
		collector.Stop()
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("linkd: shutdown: %v", err)
		}
		// Intake is fed by handlers, so stop the pipeline only after the
		// listener has drained; Close then applies everything buffered.
		if pipe != nil {
			if err := pipe.Close(ctx); err != nil {
				log.Printf("linkd: ingest drain: %v", err)
			} else {
				st := pipe.Stats()
				log.Printf("linkd: ingest drained (%d tweets, %d follows, %d rebuilds)",
					st.AppliedTweets, st.AppliedFollows, st.Rebuilds)
			}
		}
		// The WAL closes last: every drained event is already teed, so
		// this is a flush, not a data-loss window.
		if err := sys.ClosePersist(); err != nil {
			log.Printf("linkd: close persistence: %v", err)
		}
	}()

	log.Printf("linkd: listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("linkd: %v", err)
	}
	<-drained // don't exit before in-flight requests finish draining
	log.Print("linkd: bye")
}

// validateFlags rejects flag values that would misconfigure the server
// before any world generation happens: a non-positive user count
// generates an empty world every request 404s against, a negative
// worker count is always a typo (0 means GOMAXPROCS), and non-positive
// connection timeouts silently disable protection the defaults exist to
// provide.
func validateFlags(users, workers int, readTimeout, writeTimeout, idleTimeout, reqTimeout, shutdownGrace time.Duration) error {
	if users <= 0 {
		return fmt.Errorf("-users must be positive, got %d", users)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be positive or 0 for GOMAXPROCS, got %d", workers)
	}
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"-read-timeout", readTimeout},
		{"-write-timeout", writeTimeout},
		{"-idle-timeout", idleTimeout},
		{"-shutdown-grace", shutdownGrace},
	} {
		if f.d <= 0 {
			return fmt.Errorf("%s must be positive, got %v", f.name, f.d)
		}
	}
	if reqTimeout < 0 {
		return fmt.Errorf("-request-timeout must be positive or 0 to disable, got %v", reqTimeout)
	}
	return nil
}

// validateIngestFlags rejects nonsense pipeline tuning. A negative
// -rebuild-after is allowed: it disables the edge-count trigger, leaving
// only the interval (or manual) rebuilds.
func validateIngestFlags(queue int, interval time.Duration) error {
	if queue < 0 {
		return fmt.Errorf("-ingest-queue must be positive or 0 for the default, got %d", queue)
	}
	if interval < 0 {
		return fmt.Errorf("-rebuild-interval must be positive or 0 to disable, got %v", interval)
	}
	return nil
}

// withRequestTimeout bounds every request with a context deadline. The
// httpapi handlers propagate it into the scoring pipeline, so an
// over-budget query gets a deadline_exceeded error envelope (or per-item
// errors on the batch endpoint) instead of tying up the connection.
func withRequestTimeout(d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}
